open Vplan_cq
open Vplan_views
module Containment = Vplan_containment.Containment

type result = {
  buckets : Atom.t list list;
  candidates_checked : int;
  rewritings : Query.t list;
}

(* A view subgoal w covers query subgoal g when they unify and every
   distinguished query variable of g lands on a distinguished view
   position or a constant. *)
let bucket_entry ~(query : Query.t) ~used (view : Query.t) (w : Atom.t) (g : Atom.t) =
  match Unify.mgu_args Subst.empty g.Atom.args w.Atom.args with
  | None -> None
  | Some sigma ->
      let query_vars = Query.var_set query in
      let ok =
        List.for_all
          (fun x ->
            (not (Query.is_distinguished query x))
            || Mapping_util.maps_to_head_var sigma ~view x)
          (Atom.vars g)
      in
      if not ok then None
      else
        let atom, _ = Mapping_util.head_atom ~sigma ~query_vars ~used view in
        Some atom

let build_buckets ~query ~views ~used =
  List.map
    (fun g ->
      List.concat_map
        (fun view ->
          let view', _ = Query.rename_apart ~avoid:(Query.var_set query) view in
          List.filter_map (fun w -> bucket_entry ~query ~used view' w g) view'.Query.body
          |> List.sort_uniq Atom.compare)
        views)
    query.Query.body

let rec cartesian = function
  | [] -> [ [] ]
  | bucket :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun entry -> List.map (fun tail -> entry :: tail) tails) bucket

let run ?(max_candidates = 100_000) ~mode ~query ~views () =
  let used = Query.var_set query in
  let buckets = build_buckets ~query ~views ~used in
  let product_size = List.fold_left (fun acc b -> acc * max 1 (List.length b)) 1 buckets in
  if List.exists (( = ) []) buckets then
    { buckets; candidates_checked = 0; rewritings = [] }
  else if product_size > max_candidates then
    invalid_arg
      (Printf.sprintf "Bucket.run: %d candidates exceed the cap %d" product_size
         max_candidates)
  else
    let keep p =
      match mode with
      | `Equivalent -> Expansion.is_equivalent_rewriting ~views ~query p
      | `Contained -> Expansion.expansion_contained_in_query ~views ~query p
    in
    let rewritings =
      cartesian buckets
      |> List.filter_map (fun body ->
             let body = List.sort_uniq Atom.compare body in
             match Query.make query.Query.head body with
             | Ok p when keep p -> Some p
             | Ok _ | Error _ -> None)
      |> List.fold_left
           (fun acc p ->
             if List.exists (Containment.isomorphic p) acc then acc else p :: acc)
           []
      |> List.rev
    in
    { buckets; candidates_checked = product_size; rewritings }
