open Vplan_cq
open Vplan_views

type mcd = {
  view : View.t;
  atom : Atom.t;
  covered : Atom.t list;
  mask : int;
  equated : (string * string) list;
}

type result = {
  mcds : mcd list;
  rewritings : Query.t list;
  equivalent : Query.t list;
}

let pp_mcd ppf m =
  Format.fprintf ppf "%a covers {%a}" Atom.pp m.atom
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Atom.pp)
    m.covered

(* Form all MCDs seeded by mapping query subgoal [g] into view subgoal
   [w], closing under the MiniCon property by DFS over the choices of
   target view subgoals for dragged-in query subgoals. *)
let close_mcd ~(query : Query.t) ~(view' : Query.t) ~seed_mask ~sigma0 =
  let body = Array.of_list query.Query.body in
  let results = ref [] in
  let var_occurrences x =
    let mask = ref 0 in
    Array.iteri (fun i a -> if List.mem x (Atom.vars a) then mask := !mask lor (1 lsl i)) body;
    !mask
  in
  let rec close sigma mask =
    (* C1: distinguished query variables in the covered set must map to
       distinguished view positions. *)
    let covered_vars =
      Array.to_list body
      |> List.mapi (fun i a -> (i, a))
      |> List.concat_map (fun (i, a) -> if mask land (1 lsl i) <> 0 then Atom.vars a else [])
      |> List.sort_uniq String.compare
    in
    let c1_ok =
      List.for_all
        (fun x ->
          (not (Query.is_distinguished query x))
          || Mapping_util.maps_to_head_var sigma ~view:view' x)
        covered_vars
    in
    (* head homomorphisms act on head variables only: a unifier that
       specializes an existential view variable is not expressible *)
    if c1_ok && Mapping_util.existentials_unspecialized sigma ~view:view' then begin
      (* C2: a variable bound to a view existential drags in every subgoal
         that uses it. *)
      let missing =
        List.fold_left
          (fun acc x ->
            if Mapping_util.maps_to_head_var sigma ~view:view' x then acc
            else acc lor (var_occurrences x land lnot mask))
          0 covered_vars
      in
      if missing = 0 then results := (sigma, mask) :: !results
      else begin
        let rec lowest bit = if missing land (1 lsl bit) <> 0 then bit else lowest (bit + 1) in
        let i = lowest 0 in
        List.iter
          (fun (w : Atom.t) ->
            match Unify.mgu_args sigma body.(i).Atom.args w.Atom.args with
            | Some sigma' -> close sigma' (mask lor (1 lsl i))
            | None -> ())
          (List.filter
             (fun (w : Atom.t) ->
               String.equal w.Atom.pred body.(i).Atom.pred
               && Atom.arity w = Atom.arity body.(i))
             view'.Query.body)
      end
    end
  in
  close sigma0 seed_mask;
  !results

let form_mcds ~query ~views =
  let query_vars = Query.var_set query in
  let body = Array.of_list query.Query.body in
  let used = ref query_vars in
  let all = ref [] in
  List.iter
    (fun view ->
      let view', _ = Query.rename_apart ~avoid:query_vars view in
      Array.iteri
        (fun i g ->
          List.iter
            (fun (w : Atom.t) ->
              if String.equal w.Atom.pred g.Atom.pred && Atom.arity w = Atom.arity g then
                match Unify.mgu_args Subst.empty g.Atom.args w.Atom.args with
                | None -> ()
                | Some sigma0 ->
                    let closed =
                      close_mcd ~query ~view' ~seed_mask:(1 lsl i) ~sigma0
                    in
                    List.iter
                      (fun (sigma, mask) ->
                        let atom, used' =
                          Mapping_util.head_atom ~sigma ~query_vars ~used:!used view'
                        in
                        used := used';
                        let covered =
                          Array.to_list body
                          |> List.filteri (fun j _ -> mask land (1 lsl j) <> 0)
                        in
                        (* query variables whose unification classes have
                           merged (two of them mapped onto the same view
                           head variable): grouped by resolved
                           representative *)
                        let equated =
                          let covered_vars =
                            List.concat_map Atom.vars covered
                            |> List.sort_uniq String.compare
                          in
                          let groups = Hashtbl.create 8 in
                          List.iter
                            (fun x ->
                              match Unify.resolve sigma (Term.Var x) with
                              | Term.Var r ->
                                  let existing =
                                    Option.value ~default:[] (Hashtbl.find_opt groups r)
                                  in
                                  Hashtbl.replace groups r (x :: existing)
                              | Term.Cst _ -> ())
                            covered_vars;
                          Hashtbl.fold
                            (fun _ group acc ->
                              match group with
                              | [] | [ _ ] -> acc
                              | first :: rest ->
                                  List.map (fun other -> (first, other)) rest @ acc)
                            groups []
                        in
                        all := { view; atom; covered; mask; equated } :: !all)
                      closed)
            view'.Query.body)
        body)
    views;
  (* Deduplicate: same covered set and isomorphic atom modulo the fresh
     variables — comparing the atom with fresh variables canonicalized. *)
  let canonical_atom (m : mcd) =
    let fresh_vars =
      List.filter (fun x -> not (Names.Sset.mem x query_vars)) (Atom.vars m.atom)
    in
    let s =
      Subst.of_list (List.mapi (fun k x -> (x, Term.Var ("#f" ^ string_of_int k))) fresh_vars)
    in
    Atom.apply s m.atom
  in
  let canonical_equated m = List.sort_uniq compare m.equated in
  List.fold_left
    (fun acc m ->
      if
        List.exists
          (fun m' ->
            m'.mask = m.mask
            && Atom.equal (canonical_atom m') (canonical_atom m)
            && canonical_equated m' = canonical_equated m)
          acc
      then acc
      else m :: acc)
    [] !all
  |> List.rev

let combine ~max_results ~(query : Query.t) mcds =
  let universe = (1 lsl List.length query.Query.body) - 1 in
  let results = ref [] in
  let count = ref 0 in
  (* Branching always targets the lowest uncovered subgoal, and chosen
     MCDs are pairwise disjoint, so every valid combination is reached
     exactly once. *)
  let rec go chosen covered =
    if !count >= max_results then ()
    else if covered = universe then begin
      incr count;
      results := List.rev chosen :: !results
    end
    else begin
      let rec lowest bit =
        if covered land (1 lsl bit) = 0 then bit else lowest (bit + 1)
      in
      let target = lowest 0 in
      List.iter
        (fun m ->
          if m.mask land (1 lsl target) <> 0 && m.mask land covered = 0 then
            go (m :: chosen) (covered lor m.mask))
        mcds
    end
  in
  go [] 0;
  List.rev !results

(* Merge the equivalence classes of query variables induced by the chosen
   MCDs and substitute class representatives throughout the head and the
   MCD atoms — MiniCon's "EC" step.  Without it, a combination where two
   query variables were mapped onto one view head variable would silently
   drop the implied join condition. *)
let representative_subst combo =
  let parent = Hashtbl.create 8 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some "" -> x
    | Some p ->
        let root = find p in
        Hashtbl.replace parent x root;
        root
  in
  let union x y =
    let rx = find x and ry = find y in
    if not (String.equal rx ry) then
      (* keep the lexicographically smaller name as representative *)
      if String.compare rx ry <= 0 then Hashtbl.replace parent ry rx
      else Hashtbl.replace parent rx ry
  in
  List.iter (fun m -> List.iter (fun (x, y) -> union x y) m.equated) combo;
  let vars = Hashtbl.fold (fun x _ acc -> x :: acc) parent [] in
  Subst.of_list
    (List.filter_map
       (fun x ->
         let r = find x in
         if String.equal r x then None else Some (x, Term.Var r))
       vars)

let run ?(max_results = 10_000) ~query ~views () =
  let mcds = form_mcds ~query ~views in
  let combinations = combine ~max_results ~query mcds in
  let rewritings =
    List.filter_map
      (fun combo ->
        let subst = representative_subst combo in
        let head = Atom.apply subst query.Query.head in
        let atoms = List.map (fun m -> Atom.apply subst m.atom) combo in
        match Query.make head atoms with
        | Ok p -> Some p
        | Error _ -> None)
      combinations
  in
  let equivalent =
    List.filter (Expansion.is_equivalent_rewriting ~views ~query) rewritings
  in
  { mcds; rewritings; equivalent }

let maximally_contained ?max_results ~query ~views () =
  let r = run ?max_results ~query ~views () in
  match Ucq.make r.rewritings with
  | Ok u -> Some (Vplan_containment.Ucq_containment.minimize u)
  | Error _ -> None
