(** The bucket algorithm (Levy–Rajaraman–Ordille 1996) as a baseline.

    For each query subgoal, the bucket holds the view atoms that can cover
    it (a view subgoal unifies with the query subgoal, mapping
    distinguished query variables to distinguished view positions).
    Candidate rewritings are elements of the cartesian product of the
    buckets; each is kept if its expansion is contained in (resp.
    equivalent to) the query.

    The algorithm over-generates candidates — its classic weakness and the
    motivation for MiniCon — which the comparison bench quantifies. *)

open Vplan_cq
open Vplan_views

type result = {
  buckets : Atom.t list list;  (** one bucket per query subgoal *)
  candidates_checked : int;  (** cartesian-product size actually tested *)
  rewritings : Query.t list;
}

(** [run ~mode ~query ~views] with [mode] selecting the containment test:
    [`Equivalent] for equivalent rewritings (closed world), [`Contained]
    for contained rewritings (open world).  [max_candidates] caps the
    cartesian product (default 100_000). *)
val run :
  ?max_candidates:int ->
  mode:[ `Equivalent | `Contained ] ->
  query:Query.t ->
  views:View.t list ->
  unit ->
  result
