(** The inverse-rules algorithm (Duschka–Genesereth, PODS 1997) as a
    third baseline.

    Each view definition [v(X̄) :- g1, ..., gk] is {e inverted} into one
    rule per body atom, [gi(...) :- v(X̄)], where every existential
    variable of the view becomes a Skolem term [f(X̄)] over the view's
    head variables.  Applying the inverse rules to a view instance
    recovers a (partial, Skolemized) base database; evaluating the query
    over it and discarding answers that contain Skolem values yields the
    certain answers — the same answers a maximally-contained rewriting
    computes.

    Skolem values are encoded as reserved symbolic constants (the parser
    cannot produce their spelling), so the ordinary relational engine
    evaluates the recovered database unchanged. *)

open Vplan_cq
open Vplan_views
open Vplan_relational

(** [is_skolem c] recognizes the reserved Skolem encoding. *)
val is_skolem : Term.const -> bool

(** [invert views] lists the inverse rules, one per view body atom.  The
    rule is represented as a (head atom over a base predicate, view atom)
    pair, with Skolem terms spelled as reserved variables; exposed mainly
    for inspection and tests. *)
val invert : View.t list -> (Atom.t * Atom.t) list

(** [recover_base ~views view_db] applies the inverse rules to a view
    instance, producing the Skolemized base database. *)
val recover_base : views:View.t list -> Database.t -> Database.t

(** [certain_answers ~views ~query view_db] evaluates [query] over the
    recovered base database and drops tuples containing Skolem values. *)
val certain_answers : views:View.t list -> query:Query.t -> Database.t -> Relation.t
