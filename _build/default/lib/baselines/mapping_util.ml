open Vplan_cq

let resolve_class sigma ~query_vars t =
  let r = Unify.resolve sigma t in
  match r with
  | Term.Cst _ -> r
  | Term.Var x when Names.Sset.mem x query_vars -> r
  | Term.Var x ->
      (* Prefer a query variable of the same unification class: another
         variable resolving to the same representative. *)
      let preferred =
        List.find_map
          (fun (y, _) ->
            if Names.Sset.mem y query_vars && Term.equal (Unify.resolve sigma (Term.Var y)) r
            then Some (Term.Var y)
            else None)
          (Subst.bindings sigma)
      in
      (match preferred with Some q -> q | None -> Term.Var x)

let maps_to_head_var sigma ~(view : Query.t) x =
  match Unify.resolve sigma (Term.Var x) with
  | Term.Cst _ -> false
  | Term.Var r ->
      Names.Sset.exists
        (fun a ->
          match Unify.resolve sigma (Term.Var a) with
          | Term.Var r' -> String.equal r r'
          | Term.Cst _ -> false)
        (Atom.var_set view.Query.head)

let existentials_unspecialized sigma ~(view : Query.t) =
  let head_vars = Atom.var_set view.Query.head in
  let view_vars = Query.vars view in
  let existentials = List.filter (fun v -> not (Names.Sset.mem v head_vars)) view_vars in
  List.for_all
    (fun e ->
      match Unify.resolve sigma (Term.Var e) with
      | Term.Cst _ -> false
      | Term.Var r ->
          List.for_all
            (fun v ->
              String.equal v e
              ||
              match Unify.resolve sigma (Term.Var v) with
              | Term.Var r' -> not (String.equal r r')
              | Term.Cst _ -> true)
            view_vars)
    existentials

let head_atom ~sigma ~query_vars ~used (view : Query.t) =
  let used = ref used in
  let fresh_for = Hashtbl.create 8 in
  let freshen x =
    match Hashtbl.find_opt fresh_for x with
    | Some v -> v
    | None ->
        let name = Names.fresh ~used:!used ("F" ^ x) in
        used := Names.Sset.add name !used;
        let v = Term.Var name in
        Hashtbl.add fresh_for x v;
        v
  in
  let args =
    List.map
      (fun arg ->
        match resolve_class sigma ~query_vars arg with
        | Term.Cst _ as c -> c
        | Term.Var x as v -> if Names.Sset.mem x query_vars then v else freshen x)
      view.Query.head.Atom.args
  in
  (Atom.make view.Query.head.Atom.pred args, !used)
