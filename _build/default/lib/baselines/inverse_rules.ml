open Vplan_cq
open Vplan_views
open Vplan_relational

(* Skolem values are symbolic constants with a reserved prefix that the
   parser can never produce. *)
let skolem_prefix = "!sk:"

let is_skolem = function
  | Term.Str s ->
      String.length s >= String.length skolem_prefix
      && String.sub s 0 (String.length skolem_prefix) = skolem_prefix
  | Term.Int _ -> false

let render_const = function
  | Term.Int i -> string_of_int i
  | Term.Str s -> s

let skolem_const ~view_name ~existential tuple =
  Term.Str
    (Printf.sprintf "%s%s.%s(%s)" skolem_prefix view_name existential
       (String.concat "," (List.map render_const tuple)))

(* For inspection: the rule g'(...) :- v(X̄), with existential variables
   spelled as reserved "!sk" variables. *)
let invert views =
  List.concat_map
    (fun (v : Query.t) ->
      let head_vars = Atom.var_set v.head in
      let mark = function
        | Term.Cst _ as c -> c
        | Term.Var x as t ->
            if Names.Sset.mem x head_vars then t
            else Term.Var (skolem_prefix ^ View.name v ^ "." ^ x)
      in
      List.map
        (fun (g : Atom.t) -> (Atom.make g.pred (List.map mark g.args), v.head))
        v.body)
    views

let recover_base ~views view_db =
  List.fold_left
    (fun db (v : Query.t) ->
      match Database.find (View.name v) view_db with
      | None -> db
      | Some relation ->
          Relation.fold
            (fun tuple db ->
              (* bind head variables to the tuple's values; a repeated
                 head variable with conflicting values cannot come from a
                 real materialization — skip such tuples *)
              let binding =
                List.fold_left2
                  (fun acc head_arg value ->
                    match (acc, head_arg) with
                    | None, _ -> None
                    | Some m, Term.Cst c ->
                        if Term.equal_const c value then Some m else None
                    | Some m, Term.Var x -> (
                        match Names.Smap.find_opt x m with
                        | Some c when not (Term.equal_const c value) -> None
                        | Some _ -> Some m
                        | None -> Some (Names.Smap.add x value m)))
                  (Some Names.Smap.empty) v.head.Atom.args tuple
              in
              match binding with
              | None -> db
              | Some binding ->
                  List.fold_left
                    (fun db (g : Atom.t) ->
                      let value_of = function
                        | Term.Cst c -> c
                        | Term.Var x -> (
                            match Names.Smap.find_opt x binding with
                            | Some c -> c
                            | None -> skolem_const ~view_name:(View.name v) ~existential:x tuple)
                      in
                      Database.add_fact g.pred (List.map value_of g.args) db)
                    db v.body)
            relation db)
    Database.empty views

let certain_answers ~views ~query view_db =
  let base = recover_base ~views view_db in
  let raw = Eval.answers base query in
  Relation.fold
    (fun tuple acc ->
      if List.exists is_skolem tuple then acc else Relation.add tuple acc)
    raw
    (Relation.empty (Relation.arity raw))
