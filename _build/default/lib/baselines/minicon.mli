(** The MiniCon algorithm (Pottinger–Levy, VLDB 2000) as a baseline.

    A MiniCon description (MCD) pairs a view with a {e minimal} set of
    query subgoals that must travel together into it: whenever a query
    variable is mapped to an existential view variable, every subgoal
    using that variable joins the MCD.  Contained rewritings are exactly
    the combinations of MCDs whose covered sets partition the query's
    subgoals.

    Section 4.3 of the paper contrasts MCDs (minimal covered sets, no
    overlap allowed in combinations) with tuple-cores (maximal covered
    sets, overlap allowed), and Example 4.2 exhibits MiniCon producing
    rewritings with redundant subgoals where CoreCover finds the
    single-subgoal GMR. *)

open Vplan_cq
open Vplan_views

type mcd = {
  view : View.t;
  atom : Atom.t;  (** rewriting atom for this MCD use *)
  covered : Atom.t list;  (** the minimal covered subgoal set *)
  mask : int;
  equated : (string * string) list;
      (** query variables identified by this MCD's unifier (two query
          variables mapped onto the same view head variable).  The
          combination step merges these equivalence classes and rewrites
          every atom and the head with class representatives — without
          this, such rewritings would silently lose join conditions. *)
}

type result = {
  mcds : mcd list;
  rewritings : Query.t list;  (** contained rewritings (open world) *)
  equivalent : Query.t list;  (** the subset that is also equivalent *)
}

val pp_mcd : Format.formatter -> mcd -> unit

(** [run ~query ~views ()] forms all MCDs and combines them.
    [max_results] caps the number of combinations explored (default
    10_000). *)
val run : ?max_results:int -> query:Query.t -> views:View.t list -> unit -> result

(** [maximally_contained ~query ~views ()] — the maximally-contained
    rewriting under the open-world assumption: the union of all MCD
    combinations, minimized as a union of conjunctive queries.  [None]
    when no combination exists.  This is the Section 8 setting where a
    rewriting is a union of conjunctive queries. *)
val maximally_contained :
  ?max_results:int -> query:Query.t -> views:View.t list -> unit -> Ucq.t option
