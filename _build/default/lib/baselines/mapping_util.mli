(** Shared machinery for the bucket and MiniCon baselines: unification of
    query subgoals with view subgoals, and construction of the rewriting
    atom induced by such a unifier. *)

open Vplan_cq

(** [resolve_class sigma ~query_vars t] resolves [t] through the
    (triangular) unifier and normalizes the representative: constants win,
    then query variables, then the view variable itself.  [sigma] may bind
    view variables to view variables; [query_vars] identifies which names
    belong to the query. *)
val resolve_class : Subst.t -> query_vars:Names.Sset.t -> Term.t -> Term.t

(** [maps_to_head_var sigma ~view x] — the unification class of query
    variable [x] contains a head variable of the (renamed) [view], so the
    rewriting atom retains [x]'s join linkage.  A class resolving to a
    constant or containing only existential view variables returns
    [false]: in both cases [x]'s equality constraints are invisible
    outside the covered subgoals, so MiniCon must drag every subgoal
    using [x] into the same MCD (and a distinguished [x] cannot be
    covered at all). *)
val maps_to_head_var : Subst.t -> view:Query.t -> string -> bool

(** [existentials_unspecialized sigma ~view] — no existential variable of
    the (renamed) [view] is unified with a constant or with another view
    variable.  A head homomorphism only acts on head variables, so such a
    unifier is not expressible and the candidate mapping must be
    rejected. *)
val existentials_unspecialized : Subst.t -> view:Query.t -> bool

(** [head_atom ~sigma ~query_vars ~used view] builds the rewriting atom for
    a view used under unifier [sigma]: head arguments resolving to query
    terms keep them; remaining view variables become fresh variables
    (avoiding [used]).  Returns the atom and the enlarged used-set. *)
val head_atom :
  sigma:Subst.t ->
  query_vars:Names.Sset.t ->
  used:Names.Sset.t ->
  Query.t ->
  Atom.t * Names.Sset.t
