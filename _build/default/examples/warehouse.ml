(* Data warehousing: choosing among materialized join views for a star
   query, with filtering subgoals.

   Run with:  dune exec examples/warehouse.exe

   A retail warehouse maintains several denormalized materializations of
   a star schema.  The example shows (a) the GMR picking the widest
   applicable view, (b) CoreCover* exposing alternatives, and (c) a very
   selective empty-core view acting as a filter that lowers the M2 cost —
   the P2-vs-P3 effect of the paper's introduction. *)

open Vplan

let rule = Parser.parse_rule_exn

(* Star schema: a fact table and three dimensions. *)
let query =
  (* electronics sold in springfield, with the buying segment *)
  rule
    "q(O, Cust, Seg) :- sales(O, P, St, Cust), product(P, electronics), \
     store(St, springfield), customer(Cust, Seg)."

let views =
  List.map rule
    [
      (* fact x product *)
      "v_sp(O, P, St, Cust, Cat) :- sales(O, P, St, Cust), product(P, Cat).";
      (* fact x store *)
      "v_ss(O, P, St, Cust, City) :- sales(O, P, St, Cust), store(St, City).";
      (* dimension views *)
      "v_cust(Cust, Seg) :- customer(Cust, Seg).";
      "v_store(St, City) :- store(St, City).";
      "v_prod(P, Cat) :- product(P, Cat).";
      (* a fully denormalized materialization *)
      "v_wide(O, P, St, Cust, Cat, City, Seg) :- sales(O, P, St, Cust), \
       product(P, Cat), store(St, City), customer(Cust, Seg).";
      (* a very selective summary: orders of electronics in springfield *)
      "v_hot(O) :- sales(O, P, St, C2), product(P, electronics), store(St, springfield).";
    ]

let base =
  let rng = Prng.create 99 in
  let categories = [ "electronics"; "garden"; "toys"; "grocery" ] in
  let cities = [ "springfield"; "shelby"; "ogden" ] in
  let segments = [ "retail"; "wholesale" ] in
  let db = ref Database.empty in
  let add p args = db := Database.add_fact p args !db in
  for p = 1 to 40 do
    add "product" [ Term.Int p; Term.Str (Prng.pick rng categories) ]
  done;
  for s = 1 to 10 do
    add "store" [ Term.Int s; Term.Str (Prng.pick rng cities) ]
  done;
  for c = 1 to 30 do
    add "customer" [ Term.Int c; Term.Str (Prng.pick rng segments) ]
  done;
  for o = 1 to 400 do
    add "sales"
      [
        Term.Int o;
        Term.Int (1 + Prng.int rng 40);
        Term.Int (1 + Prng.int rng 10);
        Term.Int (1 + Prng.int rng 30);
      ]
  done;
  !db

let () =
  Format.printf "query: %a@." Query.pp query;
  let r = Corecover.all_minimal ~query ~views () in
  Format.printf "@.minimal rewritings (%d):@." (List.length r.rewritings);
  List.iter (fun p -> Format.printf "  %a@." Query.pp p) r.rewritings;
  Format.printf "filter candidates:";
  List.iter (fun tv -> Format.printf " %a" View_tuple.pp tv) r.filters;
  Format.printf "@.";

  let t = Optimizer.create ~query ~views ~base in
  (match Optimizer.best_m1 t with
  | Some p -> Format.printf "@.M1 (fewest joins): %a@." Query.pp p
  | None -> ());
  (match Optimizer.best_m2 ~with_filters:false t with
  | Some c -> Format.printf "M2 without filters: cost %d for %a@." c.m2_cost Query.pp c.m2_rewriting
  | None -> ());
  (match Optimizer.best_m2 ~with_filters:true t with
  | Some c ->
      Format.printf "M2 with filters:    cost %d for %a@." c.m2_cost Query.pp c.m2_rewriting;
      let result =
        Materialize.answers_via_rewriting (Optimizer.view_database t) c.m2_rewriting
      in
      Format.printf "@.answer: %d tuples (%s)@."
        (Relation.cardinality result)
        (if Relation.equal result (Optimizer.answer t) then "matches the query" else "MISMATCH")
  | None -> ());
  match Optimizer.best_m3 ~strategy:`Heuristic t with
  | Some c ->
      Format.printf "M3 heuristic:       cost %d, plan %a@." c.m3_cost M3.pp_plan c.m3_plan
  | None -> ()
