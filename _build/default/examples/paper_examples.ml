(* Walk through every worked example in the paper and print what the
   implementation computes for each.

   Run with:  dune exec examples/paper_examples.exe *)

open Vplan

let rule = Parser.parse_rule_exn
let section title = Format.printf "@.=== %s ===@." title

(* ------------------------------------------------------------------ *)
let example_1_1 () =
  section "Example 1.1 (car-loc-part): rewritings P1..P5";
  let query = rule "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)." in
  let views =
    List.map rule
      [
        "v1(M, D, C) :- car(M, D), loc(D, C).";
        "v2(S, M, C) :- part(S, M, C).";
        "v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C).";
        "v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).";
        "v5(M, D, C) :- car(M, D), loc(D, C).";
      ]
  in
  let rewritings =
    List.map rule
      [
        "q1(S, C) :- v1(M, anderson, C1), v1(M1, anderson, C), v2(S, M, C).";
        "q1(S, C) :- v1(M, anderson, C), v2(S, M, C).";
        "q1(S, C) :- v3(S), v1(M, anderson, C), v2(S, M, C).";
        "q1(S, C) :- v4(M, anderson, C, S).";
        "q1(S, C) :- v1(M, anderson, C1), v5(M1, anderson, C), v2(S, M, C).";
      ]
  in
  List.iteri
    (fun i p ->
      Format.printf "P%d: %a@." (i + 1) Query.pp p;
      Format.printf "    equivalent rewriting: %b, LMR: %b@."
        (Expansion.is_equivalent_rewriting ~views ~query p)
        (Classify.is_lmr ~views ~query p))
    rewritings;
  (query, views, rewritings)

(* ------------------------------------------------------------------ *)
let section_3_2 () =
  section "Section 3.2: a GMR that is not a CMR";
  let query = rule "q(X) :- e(X, X)." in
  let views = [ rule "v(A, B) :- e(A, A), e(A, B)." ] in
  let p1 = rule "q(X) :- v(X, B)." in
  let p2 = rule "q(X) :- v(X, X)." in
  Format.printf "P1: %a@.P2: %a@." Query.pp p1 Query.pp p2;
  Format.printf "P2 properly contained in P1: %b@." (Containment.properly_contained p2 p1);
  Format.printf "P1 is a CMR among {P1,P2}: %b (GMR: %b)@."
    (Classify.is_cmr_among ~lmrs:[ p1; p2 ] p1)
    (Classify.is_gmr_among ~candidates:[ p1; p2 ] p1);
  ignore (views, query)

(* ------------------------------------------------------------------ *)
let example_3_1 () =
  section "Example 3.1 / Figure 2(b): a chain of LMRs";
  let query = rule "q(X, Y, Z) :- e1(X, c), e2(Y, c), e3(Z, c)." in
  let views = [ rule "v(X, Y, Z, W) :- e1(X, W), e2(Y, W), e3(Z, W)." ] in
  let p1 = rule "q(X, Y, Z) :- v(X, Y, Z, c)." in
  let p2 = rule "q(X, Y, Z) :- v(X, Y, Z1, c), v(X1, Y1, Z, c)." in
  let p3 = rule "q(X, Y, Z) :- v(X, Y1, Z1, c), v(X2, Y, Z2, c), v(X3, Y3, Z, c)." in
  let lattice = Lattice.of_lmrs ~views [ p1; p2; p3 ] in
  Format.printf "%a" Lattice.pp lattice;
  Format.printf "chain: %b, bottoms: %d@." (Lattice.is_chain lattice)
    (List.length (Lattice.bottoms lattice));
  ignore query

let figure_2a (query, views, rewritings) =
  section "Figure 2(a): partial order of car-loc-part LMRs";
  let lmrs = List.filter (Classify.is_lmr ~views ~query) rewritings in
  Format.printf "LMRs: %d of %d rewritings@." (List.length lmrs) (List.length rewritings);
  let lattice = Lattice.of_lmrs ~views lmrs in
  Format.printf "%a" Lattice.pp lattice

(* ------------------------------------------------------------------ *)
let lemma_3_2 (query, views, rewritings) =
  section "Lemma 3.2: transforming P1 into the view-tuple rewriting P2";
  match rewritings with
  | p1 :: _ -> (
      Format.printf "P1: %a@." Query.pp p1;
      match Normalize.to_view_tuple_form ~views ~query p1 with
      | Some p' -> Format.printf "normalized: %a@." Query.pp p'
      | None -> Format.printf "not a rewriting?!@.")
  | [] -> ()

(* ------------------------------------------------------------------ *)
let example_4_1 () =
  section "Example 4.1 / Table 2: tuple-cores";
  let query = rule "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)." in
  let views = [ rule "v1(A, B) :- a(A, B), a(B, B)."; rule "v2(C, D) :- a(C, E), b(C, D)." ] in
  let r = Corecover.gmrs ~query ~views () in
  Format.printf "view tuple        tuple-core@.";
  List.iter
    (fun (tv, core) -> Format.printf "%-18s%a@." (Atom.to_string tv.View_tuple.atom) Tuple_core.pp core)
    r.cores;
  Format.printf "GMRs:@.";
  List.iter (fun p -> Format.printf "  %a@." Query.pp p) r.rewritings

(* ------------------------------------------------------------------ *)
let section_8_union () =
  section "Section 8: rewritings that are unions of conjunctive queries";
  (* The discussion example (built-in predicates elided: we drop the C <= D
     condition, which is outside the conjunctive fragment this library
     implements). The point preserved here is that P2 uses fresh variables
     C, D not occurring in the query. *)
  let query = rule "q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)." in
  let views = [ rule "v1(A, B, C, D) :- p(A, B), r(C, D)."; rule "v2(E, F) :- r(E, F)." ] in
  let p2 = rule "q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W), v2(W, U)." in
  Format.printf "P2: %a@." Query.pp p2;
  Format.printf "P2 is an equivalent rewriting: %b@."
    (Expansion.is_equivalent_rewriting ~views ~query p2)

let () =
  let carloc = example_1_1 () in
  section_3_2 ();
  example_3_1 ();
  figure_2a carloc;
  lemma_3_2 carloc;
  example_4_1 ();
  section_8_union ()
