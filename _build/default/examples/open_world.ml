(* Open-world fallback: maximally-contained rewritings and certain
   answers (Section 8 / related-work algorithms).

   Run with:  dune exec examples/open_world.exe

   When the views cannot express the whole query, no equivalent rewriting
   exists; the best any plan can do is compute the certain answers.  Two
   independent algorithms are shown computing them — MiniCon's
   maximally-contained union of conjunctive queries, and the
   inverse-rules algorithm with Skolem terms — and they agree. *)

open Vplan

let rule = Parser.parse_rule_exn

(* Flight connections: the query asks for two-hop routes, but the only
   sources expose (a) direct flights out of hub airports and (b) an
   opaque list of reachable destinations. *)
let query = rule "q(X, Z) :- flight(X, Y), flight(Y, Z)."

let views =
  List.map rule
    [
      "from_hub(H, D) :- flight(H, D), hub(H).";
      "hubs(H) :- hub(H).";
      "legs(X, Y) :- flight(X, Y).";
    ]

let base =
  Database.of_facts
    (List.map
       (fun (p, args) -> (p, List.map (fun s -> Term.Str s) args))
       [
         ("flight", [ "sfo"; "ord" ]);
         ("flight", [ "ord"; "jfk" ]);
         ("flight", [ "jfk"; "lhr" ]);
         ("flight", [ "sjc"; "sfo" ]);
         ("hub", [ "ord" ]);
         ("hub", [ "jfk" ]);
       ])

let () =
  Format.printf "query: %a@." Query.pp query;
  List.iter (fun v -> Format.printf "view:  %a@." Query.pp v) views;

  (* The full-information view [legs] makes an equivalent rewriting
     possible; remove it to force the open world. *)
  let restricted = List.filter (fun v -> View.name v <> "legs") views in
  Format.printf "@.with all views, equivalent rewriting exists: %b@."
    (Corecover.has_rewriting ~query ~views);
  Format.printf "without 'legs', equivalent rewriting exists: %b@."
    (Corecover.has_rewriting ~query ~views:restricted);

  let view_db = Materialize.views base restricted in

  (* 1. MiniCon's maximally-contained union *)
  (match Minicon.maximally_contained ~query ~views:restricted () with
  | None -> Format.printf "no contained rewriting at all@."
  | Some union ->
      Format.printf "@.maximally-contained union (%d disjunct(s)):@."
        (List.length (Ucq.disjuncts union));
      Format.printf "%a@." Ucq.pp union;
      Format.printf "answers via the union: %a@." Relation.pp
        (Eval.answers_ucq view_db union));

  (* 2. Inverse rules: recover a Skolemized base and evaluate *)
  let rules = Inverse_rules.invert restricted in
  Format.printf "@.inverse rules:@.";
  List.iter
    (fun (head, view_atom) ->
      Format.printf "  %a :- %a@." Atom.pp head Atom.pp view_atom)
    rules;
  let certain = Inverse_rules.certain_answers ~views:restricted ~query view_db in
  Format.printf "certain answers via inverse rules: %a@." Relation.pp certain;

  (* 3. Ground truth for comparison *)
  Format.printf "@.true answer over the base data: %a@." Relation.pp
    (Eval.answers base query);

  (* 4. The planner API does the fallback automatically *)
  match
    Planner.answer_via_views ~cost_model:`M2
      { Planner.query; views = restricted }
      ~base
  with
  | `Fallback_certain answer ->
      Format.printf "planner fallback (certain answers): %a@." Relation.pp answer
  | `Equivalent _ -> Format.printf "unexpected equivalent plan@."
  | `No_rewriting -> Format.printf "no rewriting@."
