(* Cost model M3 end to end: Example 6.1 / Figure 5.

   Run with:  dune exec examples/attribute_dropping.exe

   Shows that (a) under the classical supplementary-relation rule the
   rewriting P1 — which uses a fresh variable — has cheaper plans than the
   view-tuple rewriting P2, and (b) the Section 6.2 renaming heuristic
   recovers P1's cost for P2 by dropping an attribute the classical rule
   must retain. *)

open Vplan

let () =
  let query = Parser.parse_rule_exn "q(A) :- r(A, A), t(A, B), s(B, B)." in
  let views =
    List.map Parser.parse_rule_exn
      [ "v1(A, B) :- r(A, A), s(B, B)."; "v2(A, B) :- t(A, B), s(B, B)." ]
  in
  let p1 = Parser.parse_rule_exn "q(A) :- v1(A, B), v2(A, C)." in
  let p2 = Parser.parse_rule_exn "q(A) :- v1(A, B), v2(A, B)." in

  (* Figure 5's base instance. *)
  let base =
    let pairs p l = List.map (fun (x, y) -> (p, [ Term.Int x; Term.Int y ])) l in
    Database.of_facts
      (pairs "r" [ (1, 1) ]
      @ pairs "s" [ (2, 2); (4, 4); (6, 6); (8, 8) ]
      @ pairs "t" [ (1, 2); (3, 4); (5, 6); (7, 8) ])
  in
  let view_db = Materialize.views base views in
  Format.printf "v1 = %a@.v2 = %a@." Relation.pp
    (Database.find_exn "v1" view_db)
    Relation.pp
    (Database.find_exn "v2" view_db);

  let report name (p : Query.t) strategy =
    let plan =
      match strategy with
      | `Supplementary -> M3.supplementary ~head:p.head p.body
      | `Heuristic -> M3.heuristic ~views ~query ~head:p.head p.body
    in
    Format.printf "%-22s plan %a@." name M3.pp_plan plan;
    Format.printf "%-22s GSR tuple counts: %s, cost: %d cells@." ""
      (String.concat ", " (List.map string_of_int (M3.gsr_sizes view_db plan)))
      (M3.cost_of_plan view_db plan);
    Format.printf "%-22s answers: %a@." "" Relation.pp (M3.answers view_db ~head:p.head plan)
  in
  Format.printf "@.-- supplementary-relation approach --@.";
  report "P1 (fresh variable)" p1 `Supplementary;
  report "P2 (view tuples)" p2 `Supplementary;
  Format.printf "@.-- Section 6.2 renaming heuristic --@.";
  report "P2 (view tuples)" p2 `Heuristic;

  (* The optimizer's candidates come from CoreCover*, i.e. rewritings over
     view tuples — P2, but never the fresh-variable P1.  That is precisely
     the paper's Section 6 point: under the classical supplementary rule
     the generator+optimizer pipeline would miss P1's cheaper plan (best
     supplementary cost 25 below), and the renaming heuristic recovers it
     (cost 18) without leaving the view-tuple space. *)
  let t = Optimizer.create ~query ~views ~base in
  (match
     ( Optimizer.best_m3 ~strategy:`Supplementary t,
       Optimizer.best_m3 ~strategy:`Heuristic t )
   with
  | Some s, Some h ->
      Format.printf "@.best supplementary plan: cost %d for %a@." s.m3_cost Query.pp
        s.m3_rewriting;
      Format.printf "best heuristic plan:     cost %d for %a@." h.m3_cost Query.pp
        h.m3_rewriting
  | _ -> Format.printf "no rewriting@.");
  Format.printf "@.true answer: %a@." Relation.pp (Eval.answers base query)
