(* Built-in comparison predicates (Section 8).

   Run with:  dune exec examples/builtin_predicates.exe

   The paper closes with queries and views carrying built-in predicates
   such as C <= D, where rewritings become unions of conjunctive queries.
   This example reproduces that closing discussion: the view v1 exposes
   only the r-pairs with C <= D, the rewriting P1 is a union of two
   conjunctive queries covering both orientations, and P2 is a single
   conjunctive query using fresh variables. *)

open Vplan

let rule = Parser.parse_rule_exn

let query = rule "q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)."

let views =
  List.map rule
    [
      "v1(A, B, C, D) :- p(A, B), r(C, D), le(C, D).";
      "v2(E, F) :- r(E, F).";
    ]

(* P1: a union of two conjunctive queries using only the query's variables *)
let p1a = rule "q(X, Y, U, W) :- v1(X, Y, U, W), v2(W, U)."
let p1b = rule "q(X, Y, U, W) :- v1(X, Y, W, U), v2(U, W)."

(* P2: one conjunctive query, with fresh variables C and D *)
let p2 = rule "q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W), v2(W, U)."

let base =
  Database.of_facts
    [
      ("p", [ Term.Int 10; Term.Int 20 ]);
      ("p", [ Term.Int 30; Term.Int 40 ]);
      ("r", [ Term.Int 1; Term.Int 2 ]);
      ("r", [ Term.Int 2; Term.Int 1 ]);
      ("r", [ Term.Int 3; Term.Int 3 ]);
      ("r", [ Term.Int 5; Term.Int 9 ]);
    ]

(* Views with comparisons materialize through the comparison-aware
   evaluator. *)
let view_db =
  List.fold_left
    (fun db view -> Database.add_relation (View.name view) (Ccq.answers base view) db)
    Database.empty views

let () =
  Format.printf "query: %a@." Query.pp query;
  List.iter (fun v -> Format.printf "view:  %a@." Query.pp v) views;
  Format.printf "@.v1 = %a@." Relation.pp (Database.find_exn "v1" view_db);

  (* Symbolically: each P1 disjunct is a contained rewriting (sound test) *)
  List.iter
    (fun (name, p) ->
      let e = Expansion.expand_exn ~views p in
      Format.printf "%s expansion: %a@.  contained in Q: %b@." name Query.pp e
        (Ccq.is_contained e query))
    [ ("P1a", p1a); ("P1b", p1b); ("P2", p2) ];

  (* Empirically: the union P1 and the single query P2 both compute Q *)
  let truth = Eval.answers base query in
  let p1_answer = Relation.union (Eval.answers view_db p1a) (Eval.answers view_db p1b) in
  let p2_answer = Eval.answers view_db p2 in
  Format.printf "@.true answer: %d tuples@." (Relation.cardinality truth);
  Format.printf "P1 (union of 2 CQs, %d subgoals each): %d tuples (%s)@."
    (List.length p1a.Query.body)
    (Relation.cardinality p1_answer)
    (if Relation.equal truth p1_answer then "correct" else "WRONG");
  Format.printf "P2 (1 CQ, %d subgoals): %d tuples (%s)@."
    (List.length p2.Query.body)
    (Relation.cardinality p2_answer)
    (if Relation.equal truth p2_answer then "correct" else "WRONG");

  (* The paper's closing question: P2 uses fewer conjunctive queries but
     more subgoals per query — which is more efficient?  Under an
     M2-style measure, cost both against the materialized views. *)
  let m2 name body =
    let _, cost = M2.optimal view_db body in
    Format.printf "%s optimal M2 cost: %d cells@." name cost
  in
  Format.printf "@.";
  m2 "P1a" p1a.Query.body;
  m2 "P1b" p1b.Query.body;
  m2 "P2 " p2.Query.body;
  Format.printf
    "(P1's cost is the sum of its disjuncts; the comparison depends on the instance,@.";
  Format.printf " exactly the open question the paper closes with.)@."
