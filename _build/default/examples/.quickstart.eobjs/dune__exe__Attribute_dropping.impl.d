examples/attribute_dropping.ml: Database Eval Format List M3 Materialize Optimizer Parser Query Relation String Term Vplan
