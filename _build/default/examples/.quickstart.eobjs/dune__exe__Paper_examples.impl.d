examples/paper_examples.ml: Atom Classify Containment Corecover Expansion Format Lattice List Normalize Parser Query Tuple_core View_tuple Vplan
