examples/minicon_comparison.mli:
