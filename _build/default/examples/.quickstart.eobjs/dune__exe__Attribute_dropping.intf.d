examples/attribute_dropping.mli:
