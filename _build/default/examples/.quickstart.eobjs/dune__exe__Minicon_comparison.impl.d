examples/minicon_comparison.ml: Bucket Corecover Format List Minicon Parser Printf Query String Tuple_core View_tuple Vplan
