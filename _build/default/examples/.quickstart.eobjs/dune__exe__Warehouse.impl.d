examples/warehouse.ml: Corecover Database Format List M3 Materialize Optimizer Parser Prng Query Relation Term View_tuple Vplan
