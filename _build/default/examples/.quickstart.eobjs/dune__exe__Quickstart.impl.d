examples/quickstart.ml: Atom Corecover Database Format List Optimizer Parser Query Relation View_tuple Vplan
