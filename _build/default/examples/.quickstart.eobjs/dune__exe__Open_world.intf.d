examples/open_world.mli:
