examples/open_world.ml: Atom Corecover Database Eval Format Inverse_rules List Materialize Minicon Parser Planner Query Relation Term Ucq View Vplan
