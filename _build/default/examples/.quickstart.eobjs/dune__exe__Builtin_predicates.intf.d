examples/builtin_predicates.mli:
