examples/data_integration.ml: Atom Corecover Database Format List Materialize Optimizer Parser Prng Query Relation Term Vplan
