examples/quickstart.mli:
