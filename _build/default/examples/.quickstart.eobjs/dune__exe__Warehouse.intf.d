examples/warehouse.mli:
