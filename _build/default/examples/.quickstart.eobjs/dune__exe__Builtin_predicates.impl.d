examples/builtin_predicates.ml: Ccq Database Eval Expansion Format List M2 Parser Query Relation Term View Vplan
