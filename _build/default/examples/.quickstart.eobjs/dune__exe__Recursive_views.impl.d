examples/recursive_views.ml: Atom Database Format List Magic Materialize Parser Program Recursive_views Relation Term Vplan
