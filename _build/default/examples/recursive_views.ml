(* Recursive queries over views, and magic sets.

   Run with:  dune exec examples/recursive_views.exe

   Two of the threads the paper builds on, demonstrated end to end:

   - answering a recursive query (flight reachability) using views, via
     inverse rules + bottom-up Datalog evaluation (citation [9]);
   - the magic-sets transformation (citation [4], the origin of the
     supplementary relations behind cost model M3) focusing evaluation on
     the part of the data reachable from the query constants. *)

open Vplan

let program =
  Program.make_exn
    (List.map Parser.parse_rule_exn
       [ "reach(X, Y) :- flight(X, Y)."; "reach(X, Z) :- flight(X, Y), reach(Y, Z)." ])

let base =
  Database.of_facts
    (List.map
       (fun (x, y) -> ("flight", [ Term.Str x; Term.Str y ]))
       [
         ("sfo", "ord"); ("ord", "jfk"); ("jfk", "lhr"); ("sjc", "sfo");
         ("nrt", "hnd"); ("hnd", "kix");
       ]
    @ [ ("hub", [ Term.Str "ord" ]); ("hub", [ Term.Str "jfk" ]) ])

let () =
  Format.printf "program:@.%a" Program.pp program;
  Format.printf "recursive: %b@." (Program.is_recursive program);

  (* 1. plain bottom-up evaluation *)
  let all = Atom.make "reach" [ Term.Var "X"; Term.Var "Y" ] in
  let truth = Recursive_views.answers_direct ~program ~query:all base in
  Format.printf "@.reach over the base data: %d pairs@." (Relation.cardinality truth);

  (* 2. magic sets: ask only what is reachable from sfo *)
  let from_sfo = Atom.make "reach" [ Term.Cst (Term.Str "sfo"); Term.Var "Y" ] in
  (match Magic.transform program ~query:from_sfo with
  | Error e -> Format.printf "magic failed: %s@." e
  | Ok t ->
      Format.printf "@.magic-transformed program (%d rules):@.%a"
        (List.length (Program.rules t.program))
        Program.pp t.program;
      Format.printf "answers from sfo: %a@." Relation.pp
        (Magic.answers program base ~query:from_sfo));

  (* 3. the same recursive query, but only hub-published flights visible *)
  let views =
    List.map Parser.parse_rule_exn [ "from_hub(H, D) :- flight(H, D), hub(H)." ]
  in
  let view_db = Materialize.views base views in
  let certain = Recursive_views.certain_answers ~views ~program ~query:all view_db in
  Format.printf "@.certain reach over hub views only: %a@." Relation.pp certain;
  Format.printf "(sound subset of the %d true pairs)@." (Relation.cardinality truth)
