(* CoreCover vs MiniCon vs the bucket algorithm (Section 4.3 and
   Example 4.2).

   Run with:  dune exec examples/minicon_comparison.exe

   MiniCon's MCDs carry a *minimal* set of covered query subgoals so that
   combinations never overlap; CoreCover's tuple-cores are *maximal* and
   may overlap.  On Example 4.2 this means MiniCon can only produce
   3-subgoal combinations while CoreCover finds the single-subgoal GMR. *)

open Vplan

let k = 3

let () =
  (* Build Example 4.2 for k pairs a_i/b_i. *)
  let pair i = Printf.sprintf "a%d(X, Z%d), b%d(Z%d, Y)" i i i i in
  let body = String.concat ", " (List.init k (fun i -> pair (i + 1))) in
  let query = Parser.parse_rule_exn (Printf.sprintf "q(X, Y) :- %s." body) in
  let big_view = Parser.parse_rule_exn (Printf.sprintf "v(X, Y) :- %s." body) in
  let small_views =
    List.init (k - 1) (fun i ->
        Parser.parse_rule_exn (Printf.sprintf "v%d(X, Y) :- %s." (i + 1) (pair (i + 1))))
  in
  let views = big_view :: small_views in
  Format.printf "query: %a@." Query.pp query;
  List.iter (fun v -> Format.printf "view:  %a@." Query.pp v) views;

  (* CoreCover *)
  let cc = Corecover.gmrs ~query ~views () in
  Format.printf "@.CoreCover tuple-cores:@.";
  List.iter
    (fun (tv, core) ->
      Format.printf "  %a covers %d subgoal(s)@." View_tuple.pp tv
        (List.length core.Tuple_core.subgoals))
    cc.cores;
  Format.printf "CoreCover GMRs:@.";
  List.iter (fun p -> Format.printf "  %a@." Query.pp p) cc.rewritings;

  (* MiniCon *)
  let mc = Minicon.run ~query ~views () in
  Format.printf "@.MiniCon MCDs (%d):@." (List.length mc.mcds);
  List.iter (fun m -> Format.printf "  %a@." Minicon.pp_mcd m) mc.mcds;
  Format.printf "MiniCon combinations (%d), subgoal counts: %s@."
    (List.length mc.rewritings)
    (String.concat ", "
       (List.map
          (fun (p : Query.t) -> string_of_int (List.length p.body))
          mc.rewritings));
  Format.printf "...of which equivalent under the closed world: %d@."
    (List.length mc.equivalent);

  (* Bucket *)
  let b = Bucket.run ~mode:`Equivalent ~query ~views () in
  Format.printf "@.Bucket: %d candidates checked, %d equivalent rewritings@."
    b.candidates_checked (List.length b.rewritings);

  (* The punchline. *)
  let smallest l =
    List.fold_left (fun acc (p : Query.t) -> min acc (List.length p.body)) max_int l
  in
  Format.printf "@.smallest rewriting: CoreCover %d subgoal(s), MiniCon %d subgoal(s)@."
    (smallest cc.rewritings) (smallest mc.rewritings)
