(* Data integration: answering a mediated-schema query from materialized
   sources.

   Run with:  dune exec examples/data_integration.exe

   The mediated schema describes a bibliography; the integration system
   cannot touch the base relations, only the sources, each of which is a
   conjunctive view.  Under the closed-world assumption (sources are
   complete), CoreCover produces the equivalent rewritings over the
   sources and the optimizer picks the cheapest physical plan.  Mirrored
   sources (same definition, different name) are detected as one
   equivalence class. *)

open Vplan

let rule = Parser.parse_rule_exn

(* Mediated schema:
     wrote(Author, Paper), paper(Paper, Year), cites(Citing, Cited) *)
let query =
  (* authors who in 2020 wrote a paper citing some paper by turing *)
  rule
    "q(A, P) :- wrote(A, P), paper(P, 2020), cites(P, P2), wrote(turing, P2)."

let sources =
  List.map rule
    [
      (* a digital library exporting author-year pairs *)
      "dblib(A, P, Y) :- wrote(A, P), paper(P, Y).";
      (* a citation index *)
      "citidx(P1, P2) :- cites(P1, P2).";
      (* a mirror of the citation index (equivalent source) *)
      "citidx_mirror(X, Y) :- cites(X, Y).";
      (* an author-centric catalogue: who wrote what *)
      "catalog(A, P) :- wrote(A, P).";
      (* a curated feed dedicated to citations of turing's papers *)
      "turing_feed(P) :- cites(P, P2), wrote(turing, P2).";
    ]

(* A synthetic instance standing in for the sources' hidden base data. *)
let base =
  let rng = Prng.create 2020 in
  let authors = [ "turing"; "codd"; "hoare"; "dijkstra"; "liskov" ] in
  let db = ref Database.empty in
  let add p args = db := Database.add_fact p args !db in
  for p = 1 to 60 do
    add "paper" [ Term.Int p; Term.Int (2015 + Prng.int rng 8) ];
    add "wrote" [ Term.Str (Prng.pick rng authors); Term.Int p ];
    (* a few citations per paper *)
    for _ = 1 to 2 do
      add "cites" [ Term.Int p; Term.Int (1 + Prng.int rng 60) ]
    done
  done;
  !db

let () =
  Format.printf "mediated query: %a@." Query.pp query;
  List.iter (fun v -> Format.printf "source: %a@." Query.pp v) sources;

  let r = Corecover.all_minimal ~query ~views:sources () in
  Format.printf "@.source equivalence classes: %d (of %d sources)@."
    r.stats.num_view_classes r.stats.num_views;
  Format.printf "minimal rewritings over the sources:@.";
  List.iter (fun p -> Format.printf "  %a@." Query.pp p) r.rewritings;

  let t = Optimizer.create ~query ~views:sources ~base in
  (match Optimizer.best_m1 t with
  | Some p -> Format.printf "@.fewest-joins rewriting (M1): %a@." Query.pp p
  | None -> Format.printf "@.no rewriting@.");
  (match Optimizer.best_m2 t with
  | Some c ->
      Format.printf "M2-optimal rewriting: %a@." Query.pp c.m2_rewriting;
      Format.printf "  join order:";
      List.iter (fun a -> Format.printf " %a" Atom.pp a) c.m2_order;
      Format.printf "@.  cost: %d cells@." c.m2_cost
  | None -> ());

  (* soundness: execute over the materialized sources *)
  let truth = Optimizer.answer t in
  Format.printf "@.query answer: %d tuples@." (Relation.cardinality truth);
  match Optimizer.best_m2 t with
  | Some c ->
      let via_sources =
        Materialize.answers_via_rewriting (Optimizer.view_database t) c.m2_rewriting
      in
      Format.printf "via sources:  %d tuples (%s)@."
        (Relation.cardinality via_sources)
        (if Relation.equal truth via_sources then "identical" else "MISMATCH")
  | None -> ()
