(* Tests for the MiniCon and bucket baselines, including the Example 4.2
   comparison with CoreCover (Section 4.3). *)

open Vplan
open Helpers

let test_minicon_carloc () =
  let open Car_loc_part in
  let r = Minicon.run ~query ~views () in
  check_bool "finds rewritings" true (r.rewritings <> []);
  (* every combination is a contained rewriting *)
  List.iter
    (fun p ->
      check_bool
        ("contained: " ^ Query.to_string p)
        true
        (Expansion.expansion_contained_in_query ~views ~query p))
    r.rewritings;
  (* MCDs are minimal (v4 has no existentials, so each MCD covers one
     subgoal): every combination partitions the 3 subgoals, so MiniCon
     never produces the 1-subgoal v4 rewriting that CoreCover finds *)
  List.iter
    (fun (p : Query.t) ->
      check_int "combinations have 3 subgoals" 3 (List.length p.body))
    r.rewritings;
  let cc = Corecover.gmrs ~query ~views () in
  check_int "CoreCover's GMR is smaller" 1
    (List.length (List.hd cc.rewritings).Query.body)

let test_minicon_mcds_are_minimal () =
  (* an MCD's covered set is minimal: dragging happens only through
     existential variables — check against Example 4.2's structure *)
  let open Example_4_2 in
  let r = Minicon.run ~query ~views () in
  (* view v produces one MCD per (a_i, b_i) pair: 3 of them; v1 and v2 one
     each: 5 total *)
  check_int "five MCDs" 5 (List.length r.mcds);
  List.iter
    (fun (m : Minicon.mcd) -> check_int "MCDs cover pairs" 2 (List.length m.covered))
    r.mcds

let test_minicon_redundant_vs_corecover () =
  (* Example 4.2: MiniCon cannot produce the 1-subgoal rewriting; all its
     combinations use 3 subgoals, while CoreCover finds q :- v(X,Y) *)
  let open Example_4_2 in
  let mc = Minicon.run ~query ~views () in
  check_bool "MiniCon finds combinations" true (mc.rewritings <> []);
  List.iter
    (fun (p : Query.t) ->
      check_bool "every MiniCon rewriting has 3 subgoals" true
        (List.length p.body = 3))
    mc.rewritings;
  let cc = Corecover.gmrs ~query ~views () in
  check_int "CoreCover's GMR has 1 subgoal" 1
    (List.length (List.hd cc.rewritings).Query.body)

let test_minicon_equivalent_subset () =
  let open Example_4_2 in
  let r = Minicon.run ~query ~views () in
  check_bool "equivalent subset nonempty (closed world)" true (r.equivalent <> []);
  List.iter
    (fun p ->
      check_bool "equivalent check sound" true
        (Expansion.is_equivalent_rewriting ~views ~query p))
    r.equivalent

let test_minicon_distinguished_condition () =
  (* a view hiding a distinguished variable cannot produce an MCD for the
     subgoal using it *)
  let query = q "q(X, Y) :- p(X, Y)." in
  let views = qs [ "v(X) :- p(X, Y)." ] in
  let r = Minicon.run ~query ~views () in
  check_int "no MCDs" 0 (List.length r.mcds);
  check_int "no rewritings" 0 (List.length r.rewritings)

let test_minicon_existential_drag () =
  (* mapping Z to a view existential drags both subgoals into one MCD *)
  let query = q "q(X, Y) :- p(X, Z), r(Z, Y)." in
  let views = qs [ "w(A, B) :- p(A, Z), r(Z, B)." ] in
  let r = Minicon.run ~query ~views () in
  check_int "one MCD" 1 (List.length r.mcds);
  check_int "covers both subgoals" 2 (List.length (List.hd r.mcds).Minicon.covered);
  check_int "one rewriting" 1 (List.length r.rewritings)

let test_bucket_carloc () =
  let open Car_loc_part in
  let r = Bucket.run ~mode:`Equivalent ~query ~views () in
  check_int "three buckets" 3 (List.length r.buckets);
  List.iter
    (fun bucket -> check_bool "buckets nonempty" true (bucket <> []))
    r.buckets;
  check_bool "rewritings found" true (r.rewritings <> []);
  List.iter
    (fun p ->
      check_bool "equivalent rewriting" true
        (Expansion.is_equivalent_rewriting ~views ~query p))
    r.rewritings

let test_bucket_contained_mode () =
  let open Car_loc_part in
  let r = Bucket.run ~mode:`Contained ~query ~views () in
  List.iter
    (fun p ->
      check_bool "contained" true (Expansion.expansion_contained_in_query ~views ~query p))
    r.rewritings;
  let re = Bucket.run ~mode:`Equivalent ~query ~views () in
  check_bool "equivalent subset of contained" true
    (List.length re.rewritings <= List.length r.rewritings)

let test_bucket_no_views () =
  let query = q "q(X) :- p(X, Y)." in
  let r = Bucket.run ~mode:`Equivalent ~query ~views:[] () in
  check_int "empty bucket" 0 (List.length (List.hd r.buckets));
  check_int "no rewritings" 0 (List.length r.rewritings)

let test_bucket_distinguished_filtering () =
  (* bucket entries must not map a distinguished query variable to a view
     existential *)
  let query = q "q(X, Y) :- p(X, Y)." in
  let views = qs [ "v(X) :- p(X, Y)."; "w(A, B) :- p(A, B)." ] in
  let r = Bucket.run ~mode:`Equivalent ~query ~views () in
  let bucket = List.hd r.buckets in
  check_int "only w qualifies" 1 (List.length bucket);
  check_bool "entry is w" true
    (List.for_all (fun (a : Atom.t) -> a.pred = "w") bucket)

let test_bucket_vs_corecover_agreement () =
  (* both must agree on rewriting existence for the paper's examples *)
  List.iter
    (fun (query, views) ->
      let b = Bucket.run ~mode:`Equivalent ~query ~views () in
      let c = Corecover.gmrs ~query ~views () in
      check_bool "existence agreement" true ((b.rewritings <> []) = (c.rewritings <> [])))
    [
      (Car_loc_part.query, Car_loc_part.views);
      (Example_4_1.query, Example_4_1.views);
      (Example_6_1.query, Example_6_1.views);
    ]

let suite =
  [
    ("MiniCon car-loc-part", `Quick, test_minicon_carloc);
    ("MiniCon MCDs Example 4.2", `Quick, test_minicon_mcds_are_minimal);
    ("MiniCon redundancy vs CoreCover", `Quick, test_minicon_redundant_vs_corecover);
    ("MiniCon equivalent subset", `Quick, test_minicon_equivalent_subset);
    ("MiniCon distinguished condition", `Quick, test_minicon_distinguished_condition);
    ("MiniCon existential drag", `Quick, test_minicon_existential_drag);
    ("bucket car-loc-part", `Quick, test_bucket_carloc);
    ("bucket contained mode", `Quick, test_bucket_contained_mode);
    ("bucket without views", `Quick, test_bucket_no_views);
    ("bucket distinguished filtering", `Quick, test_bucket_distinguished_filtering);
    ("bucket vs CoreCover existence", `Quick, test_bucket_vs_corecover_agreement);
  ]
