test/test_cq.ml: Alcotest Atom Helpers Int List Names Option Parser Query Subst Term Unify Vplan
