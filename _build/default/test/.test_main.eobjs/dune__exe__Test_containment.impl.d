test/test_containment.ml: Alcotest Containment Example_3_1 Helpers Homomorphism List Minimize Query Subst Term Vplan
