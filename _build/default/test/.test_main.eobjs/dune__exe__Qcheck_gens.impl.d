test/qcheck_gens.ml: Atom Database List QCheck2 Query Relation String Term Vplan
