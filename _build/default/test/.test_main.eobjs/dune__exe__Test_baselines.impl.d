test/test_baselines.ml: Atom Bucket Car_loc_part Corecover Example_4_1 Example_4_2 Example_6_1 Expansion Helpers List Minicon Query Vplan
