test/test_workload.ml: Alcotest Atom Corecover Database Eval Generator Helpers List Query Relation Term View Vplan
