test/test_builtins.ml: Alcotest Ccq Database Eval Helpers List Order_constraint Relation Term View Vplan
