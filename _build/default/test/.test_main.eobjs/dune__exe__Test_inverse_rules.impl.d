test/test_inverse_rules.ml: Alcotest Atom Car_loc_part Database Eval Example_6_1 Helpers Inverse_rules List Materialize Minicon Relation String Term Vplan
