test/helpers.ml: Alcotest Atom Database List Parser Query Relation Term Vplan
