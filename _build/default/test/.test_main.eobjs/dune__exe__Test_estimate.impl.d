test/test_estimate.ml: Alcotest Atom Datagen Estimate Eval Float Helpers List M2 Prng Query String Term Vplan
