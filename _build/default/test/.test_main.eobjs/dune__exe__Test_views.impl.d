test/test_views.ml: Alcotest Atom Canonical Car_loc_part Containment Database Equiv_class Eval Example_4_1 Expansion Helpers List Materialize Names Query String Term View View_tuple Vplan
