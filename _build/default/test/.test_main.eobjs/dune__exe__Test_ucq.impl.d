test/test_ucq.ml: Alcotest Car_loc_part Corecover Database Eval Expansion Helpers List Materialize Minicon Relation Term Ucq Ucq_containment Vplan
