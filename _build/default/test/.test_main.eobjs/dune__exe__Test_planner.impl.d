test/test_planner.ml: Alcotest Car_loc_part Database Eval Helpers List Planner Relation Term Vplan
