test/test_m3.ml: Alcotest Car_loc_part Database Eval Example_6_1 Helpers List M3 Materialize Optimizer Orderings Query Relation Term Vplan
