test/test_edge_cases.ml: Alcotest Car_loc_part Corecover Database Eval Expansion Helpers List Materialize Minimize Query Relation Term View_tuple Vplan
