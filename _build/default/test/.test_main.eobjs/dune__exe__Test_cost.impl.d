test/test_cost.ml: Alcotest Atom Car_loc_part Corecover Database Eval Explain Filter Format Helpers List M1 M2 M3 Materialize Optimizer Orderings Query String Term Vplan
