test/test_datalog.ml: Alcotest Atom Car_loc_part Database Helpers Inverse_rules List Magic Materialize Names Program Query Recursive_views Relation Seminaive Term Vplan
