test/test_relational.ml: Alcotest Atom Database Datagen Eval Fun Helpers Int List Names Prng Query Relation Term Vplan
