  $ cat > carloc.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > PROGRAM
  $ cat > carloc_data.dlog <<'DATA'
  > car(honda, anderson). car(toyota, anderson). car(ford, baker).
  > loc(anderson, springfield). loc(anderson, shelby). loc(baker, springfield).
  > part(s1, honda, springfield). part(s2, toyota, shelby).
  > part(s3, ford, springfield). part(s4, honda, shelby).
  > DATA
  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m1
  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m2
  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m3
