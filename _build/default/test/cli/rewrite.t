The car-loc-part example from the paper, end to end through the CLI.

  $ cat > carloc.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > v5(M, D, C) :- car(M, D), loc(D, C).
  > PROGRAM

Globally-minimal rewritings (cost model M1):

  $ vplan_cli rewrite carloc.dlog
  query (minimized): q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)
  views: 5 in 4 equivalence classes
  view tuples: 4 (4 representatives)
  filter candidates: v3(S)
  globally-minimal rewritings (1):
    q1(S,C) :- v4(M,anderson,C,S)

All minimal rewritings (the M2 search space), with tuple-cores:

  $ vplan_cli rewrite carloc.dlog --all-minimal -v
  query (minimized): q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)
  views: 5 in 4 equivalence classes
  view tuples: 4 (4 representatives)
  tuple-cores:
    v1(M,anderson,C) covers {car(M,anderson), loc(anderson,C)}
    v2(S,M,C) covers {part(S,M,C)}
    v3(S) covers {}
    v4(M,anderson,C,S) covers {car(M,anderson), loc(anderson,C), part(S,M,C)}
  filter candidates: v3(S)
  minimal rewritings (2):
    q1(S,C) :- v1(M,anderson,C), v2(S,M,C)
    q1(S,C) :- v4(M,anderson,C,S)
