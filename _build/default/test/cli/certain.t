Certain answers under the open-world assumption (no equivalent rewriting).

  $ cat > flights.dlog <<'PROGRAM'
  > q(X, Z) :- flight(X, Y), flight(Y, Z).
  > from_hub(H, D) :- flight(H, D), hub(H).
  > hubs(H) :- hub(H).
  > PROGRAM
  $ cat > flights_data.dlog <<'DATA'
  > flight(sfo, ord). flight(ord, jfk). flight(jfk, lhr). flight(sjc, sfo).
  > hub(ord). hub(jfk).
  > DATA

  $ vplan_cli certain flights.dlog --data flights_data.dlog --algorithm minicon
  maximally-contained union:
  q(X,Z) :- from_hub(X,Y), from_hub(Y,Z)
  certain answers: {(ord, lhr)}
  true answer over the given base: {(ord, lhr); (sfo, jfk); (sjc, ord)}

  $ vplan_cli certain flights.dlog --data flights_data.dlog --algorithm inverse-rules
  certain answers: {(ord, lhr)}
  true answer over the given base: {(ord, lhr); (sfo, jfk); (sjc, ord)}
