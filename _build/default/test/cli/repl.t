The REPL drives the whole pipeline from a script on stdin.

  $ vplan_repl <<'SESSION'
  > query q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > view v1(M, D, C) :- car(M, D), loc(D, C).
  > view v2(S, M, C) :- part(S, M, C).
  > view v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > fact car(honda, anderson). loc(anderson, springfield).
  > fact part(s1, honda, springfield).
  > rewrite
  > rewrite all
  > plan m2
  > answer
  > certain
  > quit
  > SESSION
  query: q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)
  view: v1(M,D,C) :- car(M,D), loc(D,C)
  view: v2(S,M,C) :- part(S,M,C)
  view: v4(M,D,C,S) :- car(M,D), loc(D,C), part(S,M,C)
  2 fact(s) added
  1 fact(s) added
  q1(S,C) :- v4(M,anderson,C,S)
  q1(S,C) :- v1(M,anderson,C), v2(S,M,C)
  q1(S,C) :- v4(M,anderson,C,S)
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  order: v4(M,anderson,C,S)
  cost: 7 cells
  answer: {(s1, springfield)}
  {(s1, springfield)}
  {(s1, springfield)}
