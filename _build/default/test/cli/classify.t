Classification of candidate rewritings (Figure 1 regions).

  $ cat > candidates.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > q1(S, C) :- v1(M, anderson, C1), v1(M1, anderson, C), v2(S, M, C).
  > q1(S, C) :- v1(M, anderson, C), v2(S, M, C).
  > q1(S, C) :- v3(S), v1(M, anderson, C), v2(S, M, C).
  > PROGRAM

  $ vplan_cli classify candidates.dlog
  q1(S,C) :- v1(M,anderson,C1), v1(M1,anderson,C), v2(S,M,C)
    equivalent rewriting: true
    minimal as query:     true
    locally minimal:      true
    containment minimal:  false
    globally minimal:     false
  q1(S,C) :- v1(M,anderson,C), v2(S,M,C)
    equivalent rewriting: true
    minimal as query:     true
    locally minimal:      true
    containment minimal:  true
    globally minimal:     true
  q1(S,C) :- v3(S), v1(M,anderson,C), v2(S,M,C)
    equivalent rewriting: true
    minimal as query:     true
    locally minimal:      false
    containment minimal:  true
    globally minimal:     false
