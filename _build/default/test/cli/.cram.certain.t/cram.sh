  $ cat > flights.dlog <<'PROGRAM'
  > q(X, Z) :- flight(X, Y), flight(Y, Z).
  > from_hub(H, D) :- flight(H, D), hub(H).
  > hubs(H) :- hub(H).
  > PROGRAM
  $ cat > flights_data.dlog <<'DATA'
  > flight(sfo, ord). flight(ord, jfk). flight(jfk, lhr). flight(sjc, sfo).
  > hub(ord). hub(jfk).
  > DATA
  $ vplan_cli certain flights.dlog --data flights_data.dlog --algorithm minicon
  $ vplan_cli certain flights.dlog --data flights_data.dlog --algorithm inverse-rules
