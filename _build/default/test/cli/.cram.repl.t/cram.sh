  $ vplan_repl <<'SESSION'
  > query q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > view v1(M, D, C) :- car(M, D), loc(D, C).
  > view v2(S, M, C) :- part(S, M, C).
  > view v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > fact car(honda, anderson). loc(anderson, springfield).
  > fact part(s1, honda, springfield).
  > rewrite
  > rewrite all
  > plan m2
  > answer
  > certain
  > quit
  > SESSION
