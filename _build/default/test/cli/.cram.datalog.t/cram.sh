  $ cat > tc.dlog <<'PROGRAM'
  > reach(X, Y) :- flight(X, Y).
  > reach(X, Z) :- flight(X, Y), reach(Y, Z).
  > PROGRAM
  $ cat > tc_data.dlog <<'DATA'
  > flight(sfo, ord). flight(ord, jfk). flight(jfk, lhr). flight(nrt, hnd).
  > DATA
  $ vplan_cli datalog tc.dlog --data tc_data.dlog --query 'reach(sfo, X)'
  $ vplan_cli datalog tc.dlog --data tc_data.dlog --query 'reach(sfo, X)' --magic
  $ vplan_cli datalog tc.dlog --data tc_data.dlog --query 'reach(X, Y)'
  $ vplan_cli datalog tc.dlog --data tc_data.dlog --query 'reach(sfo, X'
