EXPLAIN-style plan output.

  $ cat > carloc.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > PROGRAM
  $ cat > carloc_data.dlog <<'DATA'
  > car(honda, anderson). car(toyota, anderson). car(ford, baker).
  > loc(anderson, springfield). loc(anderson, shelby). loc(baker, springfield).
  > part(s1, honda, springfield). part(s2, toyota, shelby).
  > part(s3, ford, springfield). part(s4, honda, shelby).
  > DATA

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m2 --explain
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  join order: v4(M,anderson,C,S)
  cost (M2): 25
  step 1/1: scan v4(M,anderson,C,S)  [relation 4 tuples; after: 3 tuples]
  total cost: 25 cells
  query answer size: 3

  $ vplan_cli plan carloc.dlog --data carloc_data.dlog --cost m3 --explain
  rewriting: q1(S,C) :- v4(M,anderson,C,S)
  plan: v4(M,anderson,C,S){M}
  cost (M3): 22
  step 1/1: scan v4(M,anderson,C,S)  drop {M}  [relation 4 tuples; GSR: 3 tuples x 2 attrs]
  total cost: 22 cells
  query answer size: 3
