  $ cat > bad.dlog <<'PROGRAM'
  > q(X) :- p(X)
  > PROGRAM
  $ vplan_cli rewrite bad.dlog
  $ cat > unsafe.dlog <<'PROGRAM'
  > q(X) :- p(Y).
  > PROGRAM
  $ vplan_cli rewrite unsafe.dlog
