  $ cat > carloc.dlog <<'PROGRAM'
  > q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v1(M, D, C) :- car(M, D), loc(D, C).
  > v2(S, M, C) :- part(S, M, C).
  > v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C).
  > v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
  > v5(M, D, C) :- car(M, D), loc(D, C).
  > PROGRAM
  $ vplan_cli rewrite carloc.dlog
  $ vplan_cli rewrite carloc.dlog --all-minimal -v
