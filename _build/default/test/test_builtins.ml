(* Tests for built-in comparison predicates: order-constraint closure and
   conjunctive queries with comparisons (Section 8). *)

open Vplan
open Helpers

let v x = Term.Var x
let i n = Term.Cst (Term.Int n)
let le l r = { Order_constraint.rel = Order_constraint.Le; left = l; right = r }
let lt l r = { Order_constraint.rel = Order_constraint.Lt; left = l; right = r }
let eq l r = { Order_constraint.rel = Order_constraint.Eq; left = l; right = r }

let close cs =
  match Order_constraint.of_list cs with
  | Ok t -> t
  | Error `Unsatisfiable -> Alcotest.fail "unexpectedly unsatisfiable"

let test_transitivity () =
  let t = close [ le (v "X") (v "Y"); lt (v "Y") (v "Z") ] in
  check_bool "X <= Z derivable" true (Order_constraint.implies t (le (v "X") (v "Z")));
  check_bool "X < Z derivable" true (Order_constraint.implies t (lt (v "X") (v "Z")));
  check_bool "Z <= X not derivable" false (Order_constraint.implies t (le (v "Z") (v "X")))

let test_constants_ordered () =
  let t = close [ le (v "X") (i 3) ] in
  check_bool "X <= 5 via 3 < 5" true (Order_constraint.implies t (le (v "X") (i 5)));
  check_bool "X < 5" true (Order_constraint.implies t (lt (v "X") (i 5)));
  check_bool "X <= 2 not derivable" false (Order_constraint.implies t (le (v "X") (i 2)))

let test_unsat_strict_cycle () =
  (match Order_constraint.of_list [ lt (v "X") (v "Y"); le (v "Y") (v "X") ] with
  | Error `Unsatisfiable -> ()
  | Ok _ -> Alcotest.fail "strict cycle accepted");
  match Order_constraint.of_list [ le (i 5) (v "X"); lt (v "X") (i 3) ] with
  | Error `Unsatisfiable -> ()
  | Ok _ -> Alcotest.fail "5 <= X < 3 accepted"

let test_equalities () =
  let t = close [ le (v "X") (v "Y"); le (v "Y") (v "X") ] in
  check_bool "X = Y entailed" true (Order_constraint.implies t (eq (v "X") (v "Y")));
  check_int "one entailed equality" 1 (List.length (Order_constraint.entailed_equalities t))

let test_reflexivity () =
  let t = close [] in
  check_bool "X <= X" true (Order_constraint.implies t (le (v "X") (v "X")));
  check_bool "not X < X" false (Order_constraint.implies t (lt (v "X") (v "X")))

let test_ground_semantics () =
  check_bool "3 <= 3" true (Order_constraint.satisfies_ground Order_constraint.Le (Term.Int 3) (Term.Int 3));
  check_bool "not 4 < 4" false (Order_constraint.satisfies_ground Order_constraint.Lt (Term.Int 4) (Term.Int 4));
  check_bool "strings unordered" false
    (Order_constraint.satisfies_ground Order_constraint.Le (Term.Str "a") (Term.Str "b"));
  check_bool "string equality" true
    (Order_constraint.satisfies_ground Order_constraint.Eq (Term.Str "a") (Term.Str "a"))

(* ---------------- CCQ ---------------- *)

let test_split_and_validate () =
  let query = q "q(X) :- p(X, Y), le(X, Y)." in
  let ordinary, comparisons = Ccq.split query in
  check_int "one ordinary" 1 (List.length ordinary);
  check_int "one comparison" 1 (List.length comparisons);
  (match Ccq.validate query with Ok () -> () | Error e -> Alcotest.fail e);
  let unbound = q "q(X) :- p(X, Y), le(X, Z)." in
  match Ccq.validate unbound with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unbound comparison variable accepted"

let test_ccq_answers () =
  let db =
    Database.of_facts
      [
        ("p", [ Term.Int 1; Term.Int 5 ]);
        ("p", [ Term.Int 4; Term.Int 2 ]);
        ("p", [ Term.Int 3; Term.Int 3 ]);
      ]
  in
  let between = q "q(X, Y) :- p(X, Y), le(X, Y)." in
  check_int "le filter" 2 (Relation.cardinality (Ccq.answers db between));
  let strict = q "q(X, Y) :- p(X, Y), lt(X, Y)." in
  check_int "lt filter" 1 (Relation.cardinality (Ccq.answers db strict));
  let bounded = q "q(X, Y) :- p(X, Y), le(X, 3), le(2, Y)." in
  check_int "constant bounds" 2 (Relation.cardinality (Ccq.answers db bounded))

let test_ccq_satisfiability () =
  check_bool "satisfiable" true (Ccq.is_satisfiable (q "q(X) :- p(X, Y), le(X, Y)."));
  check_bool "unsatisfiable" false
    (Ccq.is_satisfiable (q "q(X) :- p(X, Y), lt(X, Y), lt(Y, X)."))

let test_ccq_containment () =
  (* tighter constraints are contained in looser ones *)
  let tight = q "q(X, Y) :- p(X, Y), lt(X, Y)." in
  let loose = q "q(X, Y) :- p(X, Y), le(X, Y)." in
  let free = q "q(X, Y) :- p(X, Y)." in
  check_bool "lt in le" true (Ccq.is_contained tight loose);
  check_bool "le in unconstrained" true (Ccq.is_contained loose free);
  check_bool "unconstrained not in le" false (Ccq.is_contained free loose);
  check_bool "le not in lt" false (Ccq.is_contained loose tight);
  check_bool "equivalent reflexive" true (Ccq.equivalent tight tight)

let test_ccq_unsat_contained_everywhere () =
  let empty = q "q(X) :- p(X, X), lt(X, X)." in
  check_bool "empty in anything" true (Ccq.is_contained empty (q "q(Y) :- r(Y, Y)."))

let test_section8_view_with_comparison () =
  (* Section 8's view v1 carries C <= D; a rewriting using it must imply
     the comparison *)
  let query = q "q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U), le(U, W)." in
  let views =
    qs [ "v1(A, B, C, D) :- p(A, B), r(C, D), le(C, D)."; "v2(E, F) :- r(E, F)." ]
  in
  let p1 = q "q(X, Y, U, W) :- v1(X, Y, U, W), v2(W, U)." in
  check_bool "P1 equivalent (comparison-aware)" true
    (Ccq.is_equivalent_rewriting ~views ~query p1);
  (* without the le(C,D) in the view's favour, the naive rewriting that
     ignores the constraint is only contained, not equivalent *)
  let query_loose = q "q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)." in
  check_bool "P1 not equivalent to the unconstrained query" false
    (Ccq.is_equivalent_rewriting ~views ~query:query_loose p1)

let test_section8_union_empirically () =
  (* the paper's P1: a union of two conjunctive queries over v1/v2 that
     computes the unconstrained query's answer — verified empirically on
     a concrete closed-world instance (the symbolic direction needs case
     analysis beyond the sound test) *)
  let query = q "q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)." in
  let views =
    qs [ "v1(A, B, C, D) :- p(A, B), r(C, D), le(C, D)."; "v2(E, F) :- r(E, F)." ]
  in
  let p1a = q "q(X, Y, U, W) :- v1(X, Y, U, W), v2(W, U)." in
  let p1b = q "q(X, Y, U, W) :- v1(X, Y, W, U), v2(U, W)." in
  let base =
    Database.of_facts
      [
        ("p", [ Term.Int 10; Term.Int 20 ]);
        ("r", [ Term.Int 1; Term.Int 2 ]);
        ("r", [ Term.Int 2; Term.Int 1 ]);
        ("r", [ Term.Int 3; Term.Int 3 ]);
      ]
  in
  (* materialize views with comparison-aware evaluation *)
  let view_db =
    List.fold_left
      (fun db view -> Database.add_relation (View.name view) (Ccq.answers base view) db)
      Database.empty views
  in
  let union_answer =
    Relation.union
      (Eval.answers view_db p1a)
      (Eval.answers view_db p1b)
  in
  Alcotest.check relation_testable "union computes the query"
    (Eval.answers base query) union_answer

let suite =
  [
    ("transitivity", `Quick, test_transitivity);
    ("constants ordered", `Quick, test_constants_ordered);
    ("unsat cycles", `Quick, test_unsat_strict_cycle);
    ("entailed equalities", `Quick, test_equalities);
    ("reflexivity", `Quick, test_reflexivity);
    ("ground comparison semantics", `Quick, test_ground_semantics);
    ("split and validate", `Quick, test_split_and_validate);
    ("ccq answers", `Quick, test_ccq_answers);
    ("ccq satisfiability", `Quick, test_ccq_satisfiability);
    ("ccq containment", `Quick, test_ccq_containment);
    ("unsatisfiable contained everywhere", `Quick, test_ccq_unsat_contained_everywhere);
    ("Section 8 view with comparison", `Quick, test_section8_view_with_comparison);
    ("Section 8 union, empirically", `Quick, test_section8_union_empirically);
  ]
