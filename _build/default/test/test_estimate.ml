(* Tests for the System-R-style cardinality estimator. *)

open Vplan
open Helpers

let uniform_db ~tuples ~domain preds =
  let rng = Prng.create 23 in
  Datagen.random rng
    (List.map (fun predicate -> { Datagen.predicate; arity = 2; tuples; domain }) preds)

let test_atom_cardinality_base () =
  let db = uniform_db ~tuples:100 ~domain:20 [ "p" ] in
  let catalog = Estimate.analyze db in
  let full = Atom.make "p" [ Term.Var "X"; Term.Var "Y" ] in
  let actual = float_of_int (Eval.relation_size db full) in
  Alcotest.(check (float 0.01)) "full scan estimate is exact" actual
    (Estimate.atom_cardinality catalog full)

let test_constant_selection_estimate () =
  let db = uniform_db ~tuples:200 ~domain:10 [ "p" ] in
  let catalog = Estimate.analyze db in
  let selected = Atom.make "p" [ Term.Cst (Term.Int 3); Term.Var "Y" ] in
  let estimate = Estimate.atom_cardinality catalog selected in
  let actual = float_of_int (Eval.matching_count db selected) in
  (* uniform data: the 1/V rule should be within a small factor *)
  check_bool "within 3x of the truth" true
    (estimate > 0. && estimate /. actual < 3. && actual /. estimate < 3.)

let test_missing_relation () =
  let db = uniform_db ~tuples:10 ~domain:5 [ "p" ] in
  let catalog = Estimate.analyze db in
  Alcotest.(check (float 0.0)) "missing relation is empty" 0.
    (Estimate.atom_cardinality catalog (Atom.make "nope" [ Term.Var "X" ]))

let test_repeated_var_shrinks () =
  let db = uniform_db ~tuples:200 ~domain:10 [ "p" ] in
  let catalog = Estimate.analyze db in
  let loop = Atom.make "p" [ Term.Var "X"; Term.Var "X" ] in
  let full = Atom.make "p" [ Term.Var "X"; Term.Var "Y" ] in
  check_bool "self-join selection shrinks" true
    (Estimate.atom_cardinality catalog loop < Estimate.atom_cardinality catalog full)

let test_order_cost_positive_and_sensitive () =
  let db = uniform_db ~tuples:100 ~domain:12 [ "p"; "r" ] in
  let catalog = Estimate.analyze db in
  let body = (q "q(X, Z) :- p(X, Y), r(Y, Z).").Query.body in
  let cost = Estimate.order_cost catalog body in
  check_bool "positive" true (cost > 0.);
  (* adding a selective atom first should not increase the estimate of
     the later intermediate results *)
  let selective = (q "q(Z) :- p(1, Y), r(Y, Z).").Query.body in
  check_bool "selection cheaper" true (Estimate.order_cost catalog selective < cost)

let test_estimated_optimal_is_a_permutation () =
  let db = uniform_db ~tuples:60 ~domain:10 [ "p"; "r"; "s" ] in
  let catalog = Estimate.analyze db in
  let body = (q "q(X, W) :- p(X, Y), r(Y, Z), s(Z, W).").Query.body in
  let order, cost = Estimate.optimal catalog body in
  check_bool "finite" true (Float.is_finite cost);
  Alcotest.(check (slist string String.compare))
    "permutation"
    (List.map Atom.to_string body)
    (List.map Atom.to_string order)

let test_estimated_plan_quality () =
  (* the estimated-optimal order, costed against TRUE sizes, can never
     beat the true optimum, and on uniform data should be close *)
  let db = uniform_db ~tuples:80 ~domain:10 [ "p"; "r"; "s" ] in
  let catalog = Estimate.analyze db in
  let body = (q "q(X, W) :- p(X, Y), r(Y, Z), s(Z, W).").Query.body in
  let est_order, _ = Estimate.optimal catalog body in
  let _, true_optimal = M2.optimal db body in
  let realized = M2.cost_of_order db est_order in
  check_bool "never beats the true optimum" true (realized >= true_optimal);
  check_bool "within 2x on uniform data" true
    (float_of_int realized <= 2. *. float_of_int true_optimal)

let suite =
  [
    ("full-scan cardinality exact", `Quick, test_atom_cardinality_base);
    ("constant selection 1/V rule", `Quick, test_constant_selection_estimate);
    ("missing relation", `Quick, test_missing_relation);
    ("repeated variable shrinks", `Quick, test_repeated_var_shrinks);
    ("order cost sane", `Quick, test_order_cost_positive_and_sensitive);
    ("estimated optimal is a permutation", `Quick, test_estimated_optimal_is_a_permutation);
    ("estimated plan quality", `Quick, test_estimated_plan_quality);
  ]
