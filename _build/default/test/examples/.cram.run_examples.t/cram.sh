  $ ../../examples/quickstart.exe | head -2
  $ ../../examples/paper_examples.exe | grep -c '==='
  $ ../../examples/attribute_dropping.exe | grep 'best'
  $ ../../examples/minicon_comparison.exe | tail -1
  $ ../../examples/open_world.exe | grep 'planner fallback'
  $ ../../examples/builtin_predicates.exe | grep 'tuples ('
  $ ../../examples/recursive_views.exe | grep 'answers from sfo'
  $ ../../examples/data_integration.exe | tail -1
  $ ../../examples/warehouse.exe | grep 'answer:'
