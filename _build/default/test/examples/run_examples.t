Every example runs and ends with its expected punchline (full outputs are
deterministic; key lines are checked here).

  $ ../../examples/quickstart.exe | head -2
  Globally-minimal rewritings:
    q1(S,C) :- v4(M,anderson,C,S)

  $ ../../examples/paper_examples.exe | grep -c '==='
  7

  $ ../../examples/attribute_dropping.exe | grep 'best'
  best supplementary plan: cost 25 for q(A) :- v1(A,B), v2(A,B)
  best heuristic plan:     cost 18 for q(A) :- v1(A,B), v2(A,B)

  $ ../../examples/minicon_comparison.exe | tail -1
  smallest rewriting: CoreCover 1 subgoal(s), MiniCon 3 subgoal(s)

  $ ../../examples/open_world.exe | grep 'planner fallback'
  planner fallback (certain answers): {(ord, lhr)}

  $ ../../examples/builtin_predicates.exe | grep 'tuples ('
  P1 (union of 2 CQs, 2 subgoals each): 6 tuples (correct)
  P2 (1 CQ, 3 subgoals): 6 tuples (correct)

  $ ../../examples/recursive_views.exe | grep 'answers from sfo'
  answers from sfo: {(sfo, jfk); (sfo, lhr); (sfo, ord)}

  $ ../../examples/data_integration.exe | tail -1
  via sources:  1 tuples (identical)

  $ ../../examples/warehouse.exe | grep 'answer:'
  answer: 42 tuples (matches the query)
