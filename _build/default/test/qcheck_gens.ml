(* QCheck generators for random conjunctive queries, view sets and
   database instances.  Everything is kept small: containment is
   NP-complete and the properties run hundreds of cases. *)

open Vplan
module Gen = QCheck2.Gen

let pred_pool = [ ("p", 2); ("r", 2); ("s", 1) ]
let var_pool = [ "X0"; "X1"; "X2"; "X3" ]
let const_pool = [ Term.Str "c"; Term.Str "d" ]

let gen_term =
  Gen.frequency
    [
      (7, Gen.map (fun x -> Term.Var x) (Gen.oneofl var_pool));
      (3, Gen.map (fun c -> Term.Cst c) (Gen.oneofl const_pool));
    ]

let gen_atom =
  let open Gen in
  let* pred, arity = oneofl pred_pool in
  let* args = list_repeat arity gen_term in
  return (Atom.make pred args)

let gen_body ~max_atoms =
  let open Gen in
  let* n = int_range 1 max_atoms in
  list_repeat n gen_atom

(* A random sub-sequence of a list (each element kept with probability
   1/2). *)
let gen_subset l =
  let open Gen in
  List.fold_right
    (fun x acc ->
      let* keep = bool in
      let* rest = acc in
      return (if keep then x :: rest else rest))
    l (return [])

(* Head: a random sub-sequence of the body's variables (possibly empty —
   a Boolean query). *)
let gen_query_with ~pred ~max_atoms =
  let open Gen in
  let* body = gen_body ~max_atoms in
  let vars = List.concat_map Atom.vars body |> List.sort_uniq String.compare in
  let* chosen = gen_subset vars in
  let head = Atom.make pred (List.map (fun x -> Term.Var x) chosen) in
  return (Query.make_exn head body)

let gen_query = gen_query_with ~pred:"q" ~max_atoms:3

(* A view set: distinct names v0, v1, ... *)
let gen_views ~max_views ~max_atoms =
  let open Gen in
  let* n = int_range 1 max_views in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else
      let* v = gen_query_with ~pred:("v" ^ string_of_int i) ~max_atoms in
      build (i + 1) (v :: acc)
  in
  build 0 []

(* A database over the predicate pool. *)
let gen_database =
  let open Gen in
  let gen_tuple arity = list_repeat arity (map (fun i -> Term.Int i) (int_range 0 3)) in
  let gen_relation (pred, arity) =
    let* n = int_range 0 8 in
    let* tuples = list_repeat n (gen_tuple arity) in
    return (pred, Relation.of_tuples arity tuples)
  in
  let* relations = flatten_l (List.map gen_relation pred_pool) in
  return
    (List.fold_left
       (fun db (pred, r) -> Database.add_relation pred r db)
       Database.empty relations)

(* Printers for counterexamples. *)
let print_query = Query.to_string
let print_views views = String.concat " | " (List.map Query.to_string views)

let print_instance (q, views) = print_query q ^ " || " ^ print_views views

let print_with_db (q, views, db) =
  print_instance (q, views) ^ " || db size " ^ string_of_int (Database.total_size db)
