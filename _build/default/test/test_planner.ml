(* Tests for the high-level planner facade. *)

open Vplan
open Helpers

let carloc_program =
  "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).\n\
   v1(M, D, C) :- car(M, D), loc(D, C).\n\
   v2(S, M, C) :- part(S, M, C).\n\
   v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C).\n\
   v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
   v5(M, D, C) :- car(M, D), loc(D, C).\n"

let problem () =
  match Planner.parse_problem carloc_program with
  | Ok p -> p
  | Error msg -> Alcotest.fail msg

let test_parse_problem () =
  let p = problem () in
  check_int "five views" 5 (List.length p.Planner.views);
  (match Planner.parse_problem "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty program accepted");
  match Planner.parse_problem "q(X) :- p(X).\nv(X) :- p(X).\nv(X) :- p(X).\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate view names accepted"

let test_analyze () =
  let a = Planner.analyze (problem ()) in
  check_int "one GMR" 1 (List.length a.Planner.gmrs);
  check_int "two minimal rewritings" 2 (List.length a.Planner.minimal_rewritings);
  check_int "one filter" 1 (List.length a.Planner.filters);
  check_bool "no open-world fallback needed" true (a.Planner.maximally_contained = None)

let test_analyze_fallback () =
  let p =
    match Planner.parse_problem "q(X) :- p(X, Y).\nv(A) :- p(A, c).\n" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let a = Planner.analyze p in
  check_bool "no equivalent rewriting" true (a.Planner.minimal_rewritings = []);
  check_bool "fallback present" true (a.Planner.maximally_contained <> None)

let test_plan_all_models () =
  let p = problem () in
  let base = Car_loc_part.base in
  let truth = Eval.answers base p.Planner.query in
  List.iter
    (fun cost_model ->
      match Planner.plan ~cost_model p ~base with
      | None -> Alcotest.fail "expected a plan"
      | Some plan ->
          Alcotest.check relation_testable "plan computes the answer" truth
            (Planner.execute p ~base plan))
    [ `M1; `M2; `M3 `Supplementary; `M3 `Heuristic ]

let test_answer_via_views_equivalent () =
  let p = problem () in
  match Planner.answer_via_views ~cost_model:`M2 p ~base:Car_loc_part.base with
  | `Equivalent (_, answer) ->
      Alcotest.check relation_testable "answer" (Eval.answers Car_loc_part.base p.Planner.query) answer
  | `Fallback_certain _ | `No_rewriting -> Alcotest.fail "expected equivalent plan"

let test_answer_via_views_fallback () =
  let p =
    match Planner.parse_problem "q(X) :- p(X, Y).\nv(A) :- p(A, c).\n" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let base =
    Database.of_facts
      [ ("p", [ Term.Int 1; Term.Str "c" ]); ("p", [ Term.Int 2; Term.Str "d" ]) ]
  in
  match Planner.answer_via_views ~cost_model:`M2 p ~base with
  | `Fallback_certain answer ->
      check_int "certain subset" 1 (Relation.cardinality answer);
      check_bool "sound" true (Relation.subset answer (Eval.answers base p.Planner.query))
  | `Equivalent _ -> Alcotest.fail "no equivalent rewriting exists"
  | `No_rewriting -> Alcotest.fail "expected the certain-answer fallback"

let test_answer_via_views_none () =
  let p =
    match Planner.parse_problem "q(X) :- p(X, Y).\nv(A, B) :- r(A, B).\n" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let base = Database.of_facts [ ("p", [ Term.Int 1; Term.Int 2 ]) ] in
  match Planner.answer_via_views ~cost_model:`M1 p ~base with
  | `No_rewriting -> ()
  | `Equivalent _ | `Fallback_certain _ -> Alcotest.fail "expected no rewriting"

let suite =
  [
    ("parse problem", `Quick, test_parse_problem);
    ("analyze", `Quick, test_analyze);
    ("analyze fallback", `Quick, test_analyze_fallback);
    ("plan under every cost model", `Quick, test_plan_all_models);
    ("answer_via_views equivalent", `Quick, test_answer_via_views_equivalent);
    ("answer_via_views fallback", `Quick, test_answer_via_views_fallback);
    ("answer_via_views none", `Quick, test_answer_via_views_none);
  ]
