(* Tests for the Datalog engine: programs, semi-naive evaluation, magic
   sets, and recursive queries over views. *)

open Vplan
open Helpers

let tc_program =
  Program.make_exn
    (qs [ "path(X, Y) :- edge(X, Y)."; "path(X, Z) :- edge(X, Y), path(Y, Z)." ])

let edge_facts pairs = List.map (fun (x, y) -> ("edge", [ Term.Int x; Term.Int y ])) pairs
let chain_edb = Database.of_facts (edge_facts [ (1, 2); (2, 3); (3, 4); (4, 5) ])

let test_program_basics () =
  check_bool "recursive" true (Program.is_recursive tc_program);
  Alcotest.(check (list string)) "idb" [ "path" ]
    (Names.Sset.elements (Program.idb_predicates tc_program));
  Alcotest.(check (list string)) "edb" [ "edge" ]
    (Names.Sset.elements (Program.edb_predicates tc_program));
  let non_recursive = Program.make_exn (qs [ "two(X, Z) :- edge(X, Y), edge(Y, Z)." ]) in
  check_bool "non-recursive" false (Program.is_recursive non_recursive)

let test_program_arity_conflict () =
  match Program.make (qs [ "p(X) :- e(X, Y)."; "q(X) :- e(X, Y), p(X, Y)." ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity conflict accepted"

let test_transitive_closure () =
  let fixpoint = Seminaive.evaluate tc_program chain_edb in
  let path = Database.find_exn "path" fixpoint in
  (* 4+3+2+1 pairs on a 5-node chain *)
  check_int "all reachable pairs" 10 (Relation.cardinality path);
  check_bool "(1,5) derived" true (Relation.mem [ Term.Int 1; Term.Int 5 ] path)

let test_seminaive_equals_naive () =
  let cyclic = Database.of_facts (edge_facts [ (1, 2); (2, 3); (3, 1); (3, 4) ]) in
  List.iter
    (fun edb ->
      Alcotest.check
        (Alcotest.testable Database.pp Database.equal)
        "same fixpoint"
        (Seminaive.naive tc_program edb)
        (Seminaive.evaluate tc_program edb))
    [ chain_edb; cyclic; Database.empty ]

let test_cycle_terminates () =
  let cyclic = Database.of_facts (edge_facts [ (1, 2); (2, 3); (3, 1) ]) in
  let fixpoint = Seminaive.evaluate tc_program cyclic in
  check_int "3x3 pairs" 9 (Relation.cardinality (Database.find_exn "path" fixpoint))

let test_same_generation () =
  let program =
    Program.make_exn
      (qs
         [
           "sg(X, X) :- person(X).";
           "sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).";
         ])
  in
  let edb =
    Database.of_facts
      (List.map (fun p -> ("person", [ Term.Str p ])) [ "a"; "c"; "d"; "e" ]
      @ List.map
          (fun (c, p) -> ("parent", [ Term.Str c; Term.Str p ]))
          [ ("c", "a"); ("d", "a"); ("e", "c") ])
  in
  let result = Seminaive.query program edb (q "q(X, Y) :- sg(X, Y).") in
  (* siblings c and d share a generation (through sg(a,a)); e is one
     generation below and does not *)
  check_bool "(c,d) same generation" true
    (Relation.mem [ Term.Str "c"; Term.Str "d" ] result);
  check_bool "(c,e) not same generation" false
    (Relation.mem [ Term.Str "c"; Term.Str "e" ] result)

let test_seminaive_nonrecursive () =
  let program = Program.make_exn (qs [ "two(X, Z) :- edge(X, Y), edge(Y, Z)." ]) in
  let fixpoint = Seminaive.evaluate program chain_edb in
  check_int "length-2 paths" 3 (Relation.cardinality (Database.find_exn "two" fixpoint))

(* ---------------- magic sets ---------------- *)

let bigger_graph =
  (* two disconnected components: 1-2-3-4 and 10-11-12 *)
  Database.of_facts (edge_facts [ (1, 2); (2, 3); (3, 4); (10, 11); (11, 12) ])

let test_magic_matches_direct () =
  let query = Atom.make "path" [ Term.Cst (Term.Int 1); Term.Var "X" ] in
  let magic = Magic.answers tc_program bigger_graph ~query in
  let direct =
    Recursive_views.answers_direct ~program:tc_program ~query bigger_graph
  in
  Alcotest.check relation_testable "same answers" direct magic;
  check_int "three reachable" 3 (Relation.cardinality magic)

let test_magic_restricts_computation () =
  let query = Atom.make "path" [ Term.Cst (Term.Int 10); Term.Var "X" ] in
  match Magic.transform tc_program ~query with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let edb_with_seeds =
        List.fold_left
          (fun db (a : Atom.t) ->
            Database.add_fact a.pred
              (List.map (function Term.Cst c -> c | Term.Var _ -> assert false) a.args)
              db)
          bigger_graph (Database.facts t.seeds)
      in
      let fixpoint = Seminaive.evaluate t.program edb_with_seeds in
      (* the adorned path relation mentions only the component reachable
         from the seed 10: paths from 10, 11 and 12 (3 facts), never the
         component {1,2,3,4} *)
      let adorned = Database.find_exn t.answer_atom.Atom.pred fixpoint in
      check_int "only the relevant component" 3 (Relation.cardinality adorned);
      Relation.iter
        (fun tuple ->
          check_bool "no fact about the other component" false
            (List.exists (function Term.Int n -> n <= 4 | Term.Str _ -> false) tuple))
        adorned;
      (* while full evaluation derives all 6 + 3 pairs *)
      let full = Seminaive.evaluate tc_program bigger_graph in
      check_int "unrestricted computes more" 9
        (Relation.cardinality (Database.find_exn "path" full))

let test_magic_free_query () =
  (* an all-free query pattern degrades to full evaluation, same answers *)
  let query = Atom.make "path" [ Term.Var "X"; Term.Var "Y" ] in
  Alcotest.check relation_testable "same"
    (Recursive_views.answers_direct ~program:tc_program ~query bigger_graph)
    (Magic.answers tc_program bigger_graph ~query)

let test_magic_both_bound () =
  let yes = Atom.make "path" [ Term.Cst (Term.Int 1); Term.Cst (Term.Int 4) ] in
  let no = Atom.make "path" [ Term.Cst (Term.Int 1); Term.Cst (Term.Int 12) ] in
  check_int "derivable" 1 (Relation.cardinality (Magic.answers tc_program bigger_graph ~query:yes));
  check_int "not derivable" 0 (Relation.cardinality (Magic.answers tc_program bigger_graph ~query:no))

let test_magic_unknown_predicate () =
  match Magic.transform tc_program ~query:(Atom.make "nope" [ Term.Var "X" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined query predicate accepted"

(* ---------------- recursive queries over views ---------------- *)

let test_recursive_certain_answers () =
  (* views publish only hub-outgoing flights; reachability is recursive *)
  let views = qs [ "from_hub(H, D) :- flight(H, D), hub(H)." ] in
  let program =
    Program.make_exn
      (qs [ "reach(X, Y) :- flight(X, Y)."; "reach(X, Z) :- flight(X, Y), reach(Y, Z)." ])
  in
  let base =
    Database.of_facts
      (List.map
         (fun (x, y) -> ("flight", [ Term.Str x; Term.Str y ]))
         [ ("sfo", "ord"); ("ord", "jfk"); ("jfk", "lhr"); ("sjc", "sfo") ]
      @ [ ("hub", [ Term.Str "ord" ]); ("hub", [ Term.Str "jfk" ]) ])
  in
  let view_db = Materialize.views base views in
  let query = Atom.make "reach" [ Term.Var "X"; Term.Var "Y" ] in
  let certain = Recursive_views.certain_answers ~views ~program ~query view_db in
  let truth = Recursive_views.answers_direct ~program ~query base in
  check_bool "sound" true (Relation.subset certain truth);
  (* the hub-only views still witness ord -> jfk -> lhr transitively *)
  check_bool "(ord,lhr) certain" true
    (Relation.mem [ Term.Str "ord"; Term.Str "lhr" ] certain);
  check_int "exactly the hub-reachable pairs" 3 (Relation.cardinality certain)

let test_recursive_complete_with_lossless_view () =
  let views = qs [ "legs(X, Y) :- flight(X, Y)." ] in
  let program =
    Program.make_exn
      (qs [ "reach(X, Y) :- flight(X, Y)."; "reach(X, Z) :- flight(X, Y), reach(Y, Z)." ])
  in
  let base =
    Database.of_facts
      (List.map
         (fun (x, y) -> ("flight", [ Term.Int x; Term.Int y ]))
         [ (1, 2); (2, 3); (3, 4) ])
  in
  let view_db = Materialize.views base views in
  let query = Atom.make "reach" [ Term.Var "X"; Term.Var "Y" ] in
  Alcotest.check relation_testable "lossless view: complete"
    (Recursive_views.answers_direct ~program ~query base)
    (Recursive_views.certain_answers ~views ~program ~query view_db)

let test_nonrecursive_matches_inverse_rules () =
  (* on a non-recursive program, the Datalog route and the direct
     inverse-rules implementation agree *)
  let open Car_loc_part in
  let program = Program.make_exn [ Query.make_exn (Atom.make "ans" query.Query.head.Atom.args) query.Query.body ] in
  let view_db = Materialize.views base views in
  let query_atom = Atom.make "ans" (List.map (fun x -> Term.Var x) (Query.head_vars query)) in
  Alcotest.check relation_testable "agree"
    (Inverse_rules.certain_answers ~views ~query view_db)
    (Recursive_views.certain_answers ~views ~program ~query:query_atom view_db)

let suite =
  [
    ("program basics", `Quick, test_program_basics);
    ("program arity conflict", `Quick, test_program_arity_conflict);
    ("transitive closure", `Quick, test_transitive_closure);
    ("semi-naive = naive", `Quick, test_seminaive_equals_naive);
    ("cyclic termination", `Quick, test_cycle_terminates);
    ("same generation", `Quick, test_same_generation);
    ("non-recursive program", `Quick, test_seminaive_nonrecursive);
    ("magic = direct", `Quick, test_magic_matches_direct);
    ("magic restricts computation", `Quick, test_magic_restricts_computation);
    ("magic all-free", `Quick, test_magic_free_query);
    ("magic both bound", `Quick, test_magic_both_bound);
    ("magic unknown predicate", `Quick, test_magic_unknown_predicate);
    ("recursive certain answers", `Quick, test_recursive_certain_answers);
    ("recursive complete with lossless view", `Quick, test_recursive_complete_with_lossless_view);
    ("non-recursive matches inverse rules", `Quick, test_nonrecursive_matches_inverse_rules);
  ]
