(* Shared test helpers: parsing shortcuts, Alcotest testables, and the
   paper's running examples. *)

open Vplan

let q = Parser.parse_rule_exn
let qs rules = List.map Parser.parse_rule_exn rules

let query_testable = Alcotest.testable Query.pp Query.equal
let atom_testable = Alcotest.testable Atom.pp Atom.equal
let term_testable = Alcotest.testable Term.pp Term.equal
let relation_testable = Alcotest.testable Relation.pp Relation.equal

let check_query = Alcotest.check query_testable
let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* The car-loc-part example (Example 1.1), used throughout the paper. *)
module Car_loc_part = struct
  let query = q "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)."

  let v1 = q "v1(M, D, C) :- car(M, D), loc(D, C)."
  let v2 = q "v2(S, M, C) :- part(S, M, C)."
  let v3 = q "v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C)."
  let v4 = q "v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C)."
  let v5 = q "v5(M, D, C) :- car(M, D), loc(D, C)."
  let views = [ v1; v2; v3; v4; v5 ]

  let p1 = q "q1(S, C) :- v1(M, anderson, C1), v1(M1, anderson, C), v2(S, M, C)."
  let p2 = q "q1(S, C) :- v1(M, anderson, C), v2(S, M, C)."
  let p3 = q "q1(S, C) :- v3(S), v1(M, anderson, C), v2(S, M, C)."
  let p4 = q "q1(S, C) :- v4(M, anderson, C, S)."
  let p5 = q "q1(S, C) :- v1(M, anderson, C1), v5(M1, anderson, C), v2(S, M, C)."

  (* A small concrete instance for the cost models. *)
  let base =
    Database.of_facts
      (List.map
         (fun (p, args) -> (p, List.map (fun s -> Term.Str s) args))
         [
           ("car", [ "honda"; "anderson" ]);
           ("car", [ "toyota"; "anderson" ]);
           ("car", [ "ford"; "baker" ]);
           ("loc", [ "anderson"; "springfield" ]);
           ("loc", [ "anderson"; "shelby" ]);
           ("loc", [ "baker"; "springfield" ]);
           ("part", [ "s1"; "honda"; "springfield" ]);
           ("part", [ "s2"; "toyota"; "shelby" ]);
           ("part", [ "s3"; "ford"; "springfield" ]);
           ("part", [ "s4"; "honda"; "shelby" ]);
         ])
end

(* Example 4.1 (Table 2). *)
module Example_4_1 = struct
  let query = q "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)."
  let v1 = q "v1(A, B) :- a(A, B), a(B, B)."
  let v2 = q "v2(C, D) :- a(C, E), b(C, D)."
  let views = [ v1; v2 ]
end

(* Example 3.1 (chain of LMRs). *)
module Example_3_1 = struct
  let query = q "q(X, Y, Z) :- e1(X, c), e2(Y, c), e3(Z, c)."
  let view = q "v(X, Y, Z, W) :- e1(X, W), e2(Y, W), e3(Z, W)."
  let views = [ view ]

  let p1 = q "q(X, Y, Z) :- v(X, Y, Z, c)."
  let p2 = q "q(X, Y, Z) :- v(X, Y, Z1, c), v(X1, Y1, Z, c)."
  let p3 = q "q(X, Y, Z) :- v(X, Y1, Z1, c), v(X2, Y, Z2, c), v(X3, Y3, Z, c)."
end

(* Section 3.2's GMR-that-is-not-a-CMR example. *)
module Example_gmr_not_cmr = struct
  let query = q "q(X) :- e(X, X)."
  let view = q "v(A, B) :- e(A, A), e(A, B)."
  let views = [ view ]
  let p1 = q "q(X) :- v(X, B)."
  let p2 = q "q(X) :- v(X, X)."
end

(* Example 6.1 / Figure 5 (cost model M3). *)
module Example_6_1 = struct
  let query = q "q(A) :- r(A, A), t(A, B), s(B, B)."
  let v1 = q "v1(A, B) :- r(A, A), s(B, B)."
  let v2 = q "v2(A, B) :- t(A, B), s(B, B)."
  let views = [ v1; v2 ]
  let p1 = q "q(A) :- v1(A, B), v2(A, C)."
  let p2 = q "q(A) :- v1(A, B), v2(A, B)."

  let base =
    let pairs p l = List.map (fun (x, y) -> (p, [ Term.Int x; Term.Int y ])) l in
    Database.of_facts
      (pairs "r" [ (1, 1) ]
      @ pairs "s" [ (2, 2); (4, 4); (6, 6); (8, 8) ]
      @ pairs "t" [ (1, 2); (3, 4); (5, 6); (7, 8) ])
end

(* Example 4.2 (CoreCover vs MiniCon), instantiated with k = 3. *)
module Example_4_2 = struct
  let query =
    q
      "q(X, Y) :- a1(X, Z1), b1(Z1, Y), a2(X, Z2), b2(Z2, Y), a3(X, Z3), b3(Z3, Y)."

  let v = q "v(X, Y) :- a1(X, Z1), b1(Z1, Y), a2(X, Z2), b2(Z2, Y), a3(X, Z3), b3(Z3, Y)."
  let v1 = q "v1(X, Y) :- a1(X, Z1), b1(Z1, Y)."
  let v2 = q "v2(X, Y) :- a2(X, Z2), b2(Z2, Y)."
  let views = [ v; v1; v2 ]
end
