(* Tests for the workload generators of Section 7. *)

open Vplan
open Helpers

let star_config n =
  { Generator.default with shape = Generator.Star; num_views = n; seed = 17 }

let chain_config n =
  { Generator.default with shape = Generator.Chain; num_views = n; seed = 17 }

let random_config n =
  {
    Generator.default with
    shape = Generator.Random_shape;
    num_views = n;
    query_subgoals = 4;
    num_relations = 3;
    seed = 17;
  }

let test_star_shape () =
  let inst = Generator.generate (star_config 10) in
  let query = inst.Generator.query in
  check_int "8 subgoals" 8 (List.length query.Query.body);
  (* all subgoals share the center variable *)
  List.iter
    (fun (a : Atom.t) ->
      check_bool "center shared" true (List.mem "C" (Atom.vars a)))
    query.Query.body;
  check_int "10 views" 10 (List.length inst.views)

let test_chain_shape () =
  let inst = Generator.generate (chain_config 10) in
  let query = inst.Generator.query in
  check_int "8 subgoals" 8 (List.length query.Query.body);
  (* consecutive subgoals chain on a shared variable *)
  let rec check_chained = function
    | (a : Atom.t) :: (b : Atom.t) :: rest ->
        (match (List.rev a.args, b.args) with
        | last :: _, first :: _ ->
            check_bool "chained" true (Term.equal last first)
        | _ -> Alcotest.fail "unexpected arity");
        check_chained (b :: rest)
    | _ -> ()
  in
  check_chained query.Query.body

let test_views_are_safe_and_named () =
  List.iter
    (fun config ->
      let inst = Generator.generate config in
      match View.validate_set inst.Generator.views with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [ star_config 30; chain_config 30; random_config 30 ]

let test_view_subgoal_bounds () =
  let inst = Generator.generate (star_config 50) in
  List.iter
    (fun (v : Query.t) ->
      let n = List.length v.body in
      check_bool "1-3 subgoals" true (n >= 1 && n <= 3))
    inst.Generator.views

let test_generation_deterministic () =
  let i1 = Generator.generate (star_config 20) in
  let i2 = Generator.generate (star_config 20) in
  check_query "same query" i1.Generator.query i2.Generator.query;
  Alcotest.(check (list string)) "same views"
    (List.map Query.to_string i1.views)
    (List.map Query.to_string i2.views)

let test_generate_with_rewriting () =
  List.iter
    (fun config ->
      let inst = Generator.generate_with_rewriting config in
      check_bool "rewriting exists" true
        (Corecover.has_rewriting ~query:inst.Generator.query ~views:inst.views))
    [ star_config 40; chain_config 40 ]

let test_nondistinguished_policy () =
  let config = { (star_config 50) with nondistinguished_per_view = 1 } in
  let inst = Generator.generate config in
  List.iter
    (fun (v : Query.t) ->
      let body_vars = List.length (Query.vars v) in
      let head_vars = List.length (Query.head_vars v) in
      if List.length v.body = 1 then
        check_int "single-subgoal views keep all vars" body_vars head_vars
      else check_int "one variable hidden" (body_vars - 1) head_vars)
    inst.Generator.views

let test_base_database () =
  let inst = Generator.generate_with_rewriting (star_config 20) in
  let db = Generator.base_database ~tuples:30 ~domain:20 inst in
  check_bool "all query relations present" true
    (List.for_all (fun p -> Database.mem p db) (Query.body_preds inst.Generator.query));
  check_bool "query satisfiable" true
    (Relation.cardinality (Eval.answers db inst.Generator.query) > 0)

let cycle_config n =
  { Generator.default with shape = Generator.Cycle; num_views = n; seed = 17 }

let clique_config n =
  { Generator.default with shape = Generator.Clique; query_subgoals = 6; num_views = n; seed = 17 }

let test_cycle_shape () =
  let inst = Generator.generate (cycle_config 10) in
  let query = inst.Generator.query in
  check_int "8 subgoals" 8 (List.length query.Query.body);
  (* closed: last subgoal's second argument is the first subgoal's first *)
  (match (List.hd query.Query.body, List.nth query.Query.body 7) with
  | first, last -> (
      match (first.Atom.args, List.rev last.Atom.args) with
      | x0 :: _, closing :: _ -> check_bool "closes the cycle" true (Term.equal x0 closing)
      | _ -> Alcotest.fail "unexpected arity"));
  (* views never span the whole cycle *)
  List.iter
    (fun (v : Query.t) -> check_bool "arc < cycle" true (List.length v.body < 8))
    inst.views

let test_clique_shape () =
  let inst = Generator.generate (clique_config 10) in
  let query = inst.Generator.query in
  check_int "6 subgoals (K4)" 6 (List.length query.Query.body);
  (* every pair of node variables is joined exactly once *)
  let edges =
    List.map (fun (a : Atom.t) -> List.sort compare (Atom.vars a)) query.Query.body
  in
  check_int "distinct edges" 6 (List.length (List.sort_uniq compare edges))

let test_cycle_clique_end_to_end () =
  List.iter
    (fun config ->
      let inst = Generator.generate_with_rewriting ~max_attempts:100 config in
      let r = Corecover.gmrs ~verify:true ~query:inst.Generator.query ~views:inst.views () in
      check_bool "rewritings found" true (r.rewritings <> []))
    [ cycle_config 40; clique_config 40 ]

let test_random_shape_runs_corecover () =
  let inst = Generator.generate_with_rewriting (random_config 20) in
  let r = Corecover.gmrs ~verify:true ~query:inst.Generator.query ~views:inst.views () in
  check_bool "rewritings found" true (r.rewritings <> [])

let suite =
  [
    ("star shape", `Quick, test_star_shape);
    ("chain shape", `Quick, test_chain_shape);
    ("views safe and uniquely named", `Quick, test_views_are_safe_and_named);
    ("view subgoal bounds", `Quick, test_view_subgoal_bounds);
    ("deterministic generation", `Quick, test_generation_deterministic);
    ("generate_with_rewriting", `Quick, test_generate_with_rewriting);
    ("nondistinguished policy", `Quick, test_nondistinguished_policy);
    ("base database", `Quick, test_base_database);
    ("cycle shape", `Quick, test_cycle_shape);
    ("clique shape", `Quick, test_clique_shape);
    ("cycle/clique end-to-end", `Quick, test_cycle_clique_end_to_end);
    ("random shape end-to-end", `Quick, test_random_shape_runs_corecover);
  ]
