(* Tests for unions of conjunctive queries, their containment
   (Sagiv-Yannakakis) and the maximally-contained rewriting (Section 8). *)

open Vplan
open Helpers

let test_make_validation () =
  let q1 = q "q(X) :- p(X, Y)." and q2 = q "q(X) :- r(X, X)." in
  (match Ucq.make [ q1; q2 ] with
  | Ok u -> check_int "two disjuncts" 2 (List.length (Ucq.disjuncts u))
  | Error e -> Alcotest.fail e);
  (match Ucq.make [] with Error _ -> () | Ok _ -> Alcotest.fail "empty union accepted");
  let bad = q "other(X, Y) :- p(X, Y)." in
  match Ucq.make [ q1; bad ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched heads accepted"

let test_ucq_size () =
  let u = Ucq.make_exn [ q "q(X) :- p(X, Y)."; q "q(X) :- r(X, X), p(X, X)." ] in
  check_int "total subgoals" 3 (Ucq.size u)

let test_ucq_containment () =
  let u1 = Ucq.make_exn [ q "q(X) :- p(X, c)." ] in
  let u2 = Ucq.make_exn [ q "q(X) :- p(X, Y)."; q "q(X) :- r(X, X)." ] in
  check_bool "disjunct-wise containment" true (Ucq_containment.is_contained u1 u2);
  check_bool "not conversely" false (Ucq_containment.is_contained u2 u1)

let test_ucq_union_not_in_single () =
  (* a union can exceed each of its disjuncts *)
  let u = Ucq.make_exn [ q "q(X) :- p(X, X)."; q "q(X) :- r(X, X)." ] in
  let single = Ucq.make_exn [ q "q(X) :- p(X, X)." ] in
  check_bool "single in union" true (Ucq_containment.is_contained single u);
  check_bool "union not in single" false (Ucq_containment.is_contained u single)

let test_ucq_minimize () =
  let u =
    Ucq.make_exn
      [
        q "q(X) :- p(X, Y).";
        q "q(X) :- p(X, c)."; (* contained in the first *)
        q "q(X) :- r(X, X).";
        q "q(A) :- p(A, B)."; (* duplicate of the first up to renaming *)
      ]
  in
  let m = Ucq_containment.minimize u in
  check_int "two survivors" 2 (List.length (Ucq.disjuncts m));
  check_bool "equivalent" true (Ucq_containment.equivalent u m)

let test_ucq_eval () =
  let db =
    Database.of_facts
      [ ("p", [ Term.Int 1; Term.Int 1 ]); ("r", [ Term.Int 2; Term.Int 2 ]) ]
  in
  let u = Ucq.make_exn [ q "q(X) :- p(X, X)."; q "q(X) :- r(X, X)." ] in
  check_int "union of answers" 2 (Relation.cardinality (Eval.answers_ucq db u))

let test_expand_ucq () =
  let views = qs [ "v(A) :- p(A, c)."; "w(A) :- r(A, A)." ] in
  let u = Ucq.make_exn [ q "q(X) :- v(X)."; q "q(X) :- w(X)." ] in
  match Expansion.expand_ucq ~views u with
  | None -> Alcotest.fail "expected expansion"
  | Some e -> check_int "two disjuncts expanded" 2 (List.length (Ucq.disjuncts e))

(* the Section 8 discussion example, conjunctive fragment *)
let test_section8_p2 () =
  let query = q "q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)." in
  let views = qs [ "v1(A, B, C, D) :- p(A, B), r(C, D)."; "v2(E, F) :- r(E, F)." ] in
  let p2 = q "q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W), v2(W, U)." in
  check_bool "P2 equivalent rewriting" true
    (Expansion.is_equivalent_rewriting ~views ~query p2);
  let u = Ucq.of_query p2 in
  check_bool "as UCQ too" true (Expansion.is_equivalent_ucq_rewriting ~views ~query u)

let test_maximally_contained_when_no_equivalent () =
  (* only one half of the query is coverable: no equivalent rewriting,
     but MiniCon still produces a maximally-contained union *)
  let query = q "q(X) :- p(X, Y)." in
  let views = qs [ "v(A) :- p(A, c)." ] in
  check_bool "no equivalent rewriting" false (Corecover.has_rewriting ~query ~views);
  match Minicon.maximally_contained ~query ~views () with
  | None -> Alcotest.fail "expected a contained union"
  | Some u ->
      check_bool "contained" true (Expansion.is_contained_ucq_rewriting ~views ~query u);
      (* over a concrete instance the union computes a subset *)
      let base =
        Database.of_facts
          [
            ("p", [ Term.Int 1; Term.Str "c" ]);
            ("p", [ Term.Int 2; Term.Str "d" ]);
          ]
      in
      let view_db = Materialize.views base views in
      let certain = Eval.answers_ucq view_db u in
      check_bool "subset of the true answer" true
        (Relation.subset certain (Eval.answers base query));
      check_int "finds the covered tuple" 1 (Relation.cardinality certain)

let test_mcr_equals_equivalent_when_exists () =
  (* when an equivalent rewriting exists, the maximally-contained union
     computes the full answer on materialized instances *)
  let open Car_loc_part in
  let r = Minicon.run ~query ~views () in
  match Ucq.make r.Minicon.rewritings with
  | Error _ -> Alcotest.fail "no combinations"
  | Ok u ->
      let view_db = Materialize.views base views in
      Alcotest.check relation_testable "full answer" (Eval.answers base query)
        (Eval.answers_ucq view_db u)

let suite =
  [
    ("make validation", `Quick, test_make_validation);
    ("size", `Quick, test_ucq_size);
    ("containment", `Quick, test_ucq_containment);
    ("union exceeds disjuncts", `Quick, test_ucq_union_not_in_single);
    ("minimize", `Quick, test_ucq_minimize);
    ("evaluation", `Quick, test_ucq_eval);
    ("expansion", `Quick, test_expand_ucq);
    ("Section 8 P2", `Quick, test_section8_p2);
    ("maximally contained fallback", `Quick, test_maximally_contained_when_no_equivalent);
    ("MCR complete on closed world", `Quick, test_mcr_equals_equivalent_when_exists);
  ]
