(* Tests for homomorphism search, Chandra-Merlin containment, equivalence,
   isomorphism and query minimization. *)

open Vplan
open Helpers

let test_hom_basic () =
  let patterns = (q "q(X) :- p(X, Y), p(Y, Z).").body in
  let targets = (q "q(A) :- p(A, A).").body in
  check_bool "collapse onto loop" true (Homomorphism.exists patterns targets);
  let no_target = (q "q(A) :- r(A, A).").body in
  check_bool "wrong predicate" false (Homomorphism.exists patterns no_target)

let test_hom_seed () =
  let patterns = (q "q(X) :- p(X, Y).").body in
  let targets = (q "q(A) :- p(A, B), p(B, A).").body in
  let seed = Subst.singleton "X" (Term.Var "B") in
  (match Homomorphism.find ~seed patterns targets with
  | Some s ->
      Alcotest.check term_testable "respects seed" (Term.Var "B")
        (Subst.apply_term s (Term.Var "X"))
  | None -> Alcotest.fail "expected a homomorphism");
  let bad_seed = Subst.singleton "X" (Term.Cst (Term.Str "nope")) in
  check_bool "impossible seed" false (Homomorphism.exists ~seed:bad_seed patterns targets)

let test_hom_all () =
  let patterns = (q "q(X) :- p(X, Y).").body in
  let targets = (q "q(A) :- p(A, B), p(B, C).").body in
  check_int "two homomorphisms" 2 (List.length (Homomorphism.find_all patterns targets));
  check_int "limit" 1 (List.length (Homomorphism.find_all ~limit:1 patterns targets))

let test_containment_basic () =
  let q1 = q "q(X) :- p(X, Y), p(Y, X)." in
  let q2 = q "q(X) :- p(X, Y)." in
  check_bool "specialized contained in general" true (Containment.is_contained q1 q2);
  check_bool "not conversely" false (Containment.is_contained q2 q1);
  check_bool "properly contained" true (Containment.properly_contained q1 q2)

let test_containment_with_constants () =
  let q1 = q "q(X) :- p(X, c)." in
  let q2 = q "q(X) :- p(X, Y)." in
  check_bool "constant version contained" true (Containment.is_contained q1 q2);
  check_bool "general not contained in constant" false (Containment.is_contained q2 q1);
  let q3 = q "q(X) :- p(X, d)." in
  check_bool "different constants incomparable" false (Containment.is_contained q1 q3)

let test_containment_head_constants () =
  let q1 = q "q(X, c) :- p(X)." in
  let q2 = q "q(X, Y) :- p(X), r(Y)." in
  (* q2's head var Y must map to the constant c *)
  let q2c = q "q(X, c) :- p(X), r(c)." in
  check_bool "head constant propagates" true (Containment.is_contained q2c q2);
  check_bool "arity mismatch" false (Containment.is_contained q1 (q "q(X) :- p(X)."))

let test_equivalence () =
  let q1 = q "q(X) :- p(X, Y)." in
  let q2 = q "q(A) :- p(A, B), p(A, C)." in
  check_bool "equivalent modulo redundancy" true (Containment.equivalent q1 q2);
  check_bool "renamed equivalent" true (Containment.equivalent q1 (q "q(B) :- p(B, Z)."))

let test_isomorphic () =
  let q1 = q "q(X) :- p(X, Y), r(Y, Z)." in
  check_bool "renaming" true (Containment.isomorphic q1 (q "q(A) :- p(A, B), r(B, C)."));
  check_bool "reordered body" true (Containment.isomorphic q1 (q "q(A) :- r(B, C), p(A, B)."));
  (* equivalent but not isomorphic *)
  let q2 = q "q(X) :- p(X, Y), p(X, Z)." in
  let q3 = q "q(X) :- p(X, Y)." in
  check_bool "equivalent" true (Containment.equivalent q2 q3);
  check_bool "not isomorphic" false (Containment.isomorphic q2 q3)

let test_minimize_simple () =
  let query = q "q(X) :- p(X, Y), p(X, Z)." in
  let m = Minimize.minimize query in
  check_int "one subgoal" 1 (List.length m.Query.body);
  check_bool "equivalent" true (Containment.equivalent query m);
  check_bool "minimal" true (Minimize.is_minimal m)

let test_minimize_keeps_needed () =
  let query = q "q(X, Z) :- p(X, Y), p(Y, Z)." in
  let m = Minimize.minimize query in
  check_int "nothing removable" 2 (List.length m.Query.body)

let test_minimize_idempotent () =
  let query = q "q(X) :- p(X, Y), p(X, Z), p(W, X), p(V, X)." in
  let m = Minimize.minimize query in
  check_query "idempotent" m (Minimize.minimize m)

let test_minimize_respects_head () =
  (* with Y existential the body folds to one atom... *)
  let foldable = q "q(X, Z) :- p(X, Y), p(X, Z)." in
  check_int "existential folds" 1 (List.length (Minimize.minimize foldable).Query.body);
  (* ...but when Y is distinguished too, safety blocks every removal *)
  let query = q "q(X, Y, Z) :- p(X, Y), p(X, Z)." in
  let m = Minimize.minimize query in
  check_int "head blocks collapse" 2 (List.length m.Query.body)

let test_minimize_classic_triangle () =
  (* classic: a path that folds onto a loop via an intermediate *)
  let query = q "q(X) :- e(X, Y), e(Y, X), e(X, X)." in
  let m = Minimize.minimize query in
  check_int "folds to self-loop" 1 (List.length m.Query.body);
  check_bool "still equivalent" true (Containment.equivalent query m)

let test_redundant_atoms () =
  let query = q "q(X) :- p(X, Y), p(X, Z)." in
  check_int "both individually redundant" 2 (List.length (Minimize.redundant_atoms query));
  let tight = q "q(X, Z) :- p(X, Y), p(Y, Z)." in
  check_int "none redundant" 0 (List.length (Minimize.redundant_atoms tight))

(* The transitivity sanity from the paper: containment mappings compose. *)
let test_containment_transitive_example () =
  let open Example_3_1 in
  let e = Vplan.Expansion.expand_exn ~views in
  let p1e = e p1 and p2e = e p2 and p3e = e p3 in
  check_bool "P1exp equiv P2exp" true (Containment.equivalent p1e p2e);
  check_bool "P2exp equiv P3exp" true (Containment.equivalent p2e p3e);
  check_bool "P1 properly in P2" true (Containment.properly_contained p1 p2);
  check_bool "P2 properly in P3" true (Containment.properly_contained p2 p3)

let suite =
  [
    ("homomorphism basic", `Quick, test_hom_basic);
    ("homomorphism with seed", `Quick, test_hom_seed);
    ("all homomorphisms", `Quick, test_hom_all);
    ("containment basic", `Quick, test_containment_basic);
    ("containment with constants", `Quick, test_containment_with_constants);
    ("containment head constants", `Quick, test_containment_head_constants);
    ("equivalence", `Quick, test_equivalence);
    ("isomorphism", `Quick, test_isomorphic);
    ("minimize simple", `Quick, test_minimize_simple);
    ("minimize keeps needed", `Quick, test_minimize_keeps_needed);
    ("minimize idempotent", `Quick, test_minimize_idempotent);
    ("minimize respects head", `Quick, test_minimize_respects_head);
    ("minimize triangle", `Quick, test_minimize_classic_triangle);
    ("redundant atoms", `Quick, test_redundant_atoms);
    ("paper Example 3.1 containments", `Quick, test_containment_transitive_example);
  ]
