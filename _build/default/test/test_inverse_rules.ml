(* Tests for the inverse-rules baseline (Duschka-Genesereth). *)

open Vplan
open Helpers

let test_is_skolem () =
  check_bool "plain constant" false (Inverse_rules.is_skolem (Term.Str "c"));
  check_bool "int" false (Inverse_rules.is_skolem (Term.Int 3));
  check_bool "skolem spelling" true (Inverse_rules.is_skolem (Term.Str "!sk:v.Y(1)"))

let test_invert_shapes () =
  let views = qs [ "v(A) :- p(A, Y), r(Y, A)." ] in
  let rules = Inverse_rules.invert views in
  check_int "one rule per body atom" 2 (List.length rules);
  List.iter
    (fun ((head : Atom.t), (view_atom : Atom.t)) ->
      check_bool "view atom on the right" true (view_atom.pred = "v");
      check_bool "existentials marked" true
        (List.exists
           (fun x -> String.length x > 4 && String.sub x 0 4 = "!sk:")
           (Atom.vars head)
        || List.mem "A" (Atom.vars head)))
    rules

let test_recover_base () =
  let views = qs [ "v(A) :- p(A, Y)." ] in
  let base = Database.of_facts [ ("p", [ Term.Int 1; Term.Int 2 ]) ] in
  let view_db = Materialize.views base views in
  let recovered = Inverse_rules.recover_base ~views view_db in
  let p = Database.find_exn "p" recovered in
  check_int "one recovered fact" 1 (Relation.cardinality p);
  match Relation.tuples p with
  | [ [ a; b ] ] ->
      check_bool "head value preserved" true (Term.equal_const a (Term.Int 1));
      check_bool "existential skolemized" true (Inverse_rules.is_skolem b)
  | _ -> Alcotest.fail "unexpected shape"

let test_certain_answers_simple () =
  (* v hides p's second column; the join through it cannot be recovered,
     so only the projection query is certain *)
  let views = qs [ "v(A) :- p(A, Y)." ] in
  let base =
    Database.of_facts
      [ ("p", [ Term.Int 1; Term.Int 2 ]); ("p", [ Term.Int 3; Term.Int 4 ]) ]
  in
  let view_db = Materialize.views base views in
  let projection = q "q(X) :- p(X, Y)." in
  check_int "projection fully certain" 2
    (Relation.cardinality (Inverse_rules.certain_answers ~views ~query:projection view_db));
  let join = q "q(X, Z) :- p(X, Y), p(Z, Y)." in
  (* joining on the hidden column: only the trivial X = Z pairs via the
     same skolem value *)
  check_int "join through skolems only within a tuple" 2
    (Relation.cardinality (Inverse_rules.certain_answers ~views ~query:join view_db))

let test_certain_answers_sound () =
  (* certain answers never exceed the true answer *)
  let open Car_loc_part in
  let view_db = Materialize.views base views in
  let certain = Inverse_rules.certain_answers ~views ~query view_db in
  check_bool "sound" true (Relation.subset certain (Eval.answers base query))

let test_certain_answers_complete_carloc () =
  (* with v4 available the full answer is certain *)
  let open Car_loc_part in
  let view_db = Materialize.views base views in
  Alcotest.check relation_testable "complete"
    (Eval.answers base query)
    (Inverse_rules.certain_answers ~views ~query view_db)

let test_matches_minicon_mcr () =
  (* inverse rules and MiniCon's maximally-contained union compute the
     same certain answers *)
  let cases =
    [
      (Car_loc_part.query, Car_loc_part.views, Car_loc_part.base);
      (Example_6_1.query, Example_6_1.views, Example_6_1.base);
    ]
  in
  List.iter
    (fun (query, views, base) ->
      let view_db = Materialize.views base views in
      let ir = Inverse_rules.certain_answers ~views ~query view_db in
      match Minicon.maximally_contained ~query ~views () with
      | None -> Alcotest.fail "expected combinations"
      | Some u ->
          Alcotest.check relation_testable "agree" ir (Eval.answers_ucq view_db u))
    cases

let test_skolem_constants_in_views () =
  (* views with constants in the body round-trip correctly *)
  let views = qs [ "v(A) :- p(A, c)." ] in
  let base =
    Database.of_facts
      [ ("p", [ Term.Int 1; Term.Str "c" ]); ("p", [ Term.Int 2; Term.Str "d" ]) ]
  in
  let view_db = Materialize.views base views in
  let recovered = Inverse_rules.recover_base ~views view_db in
  let p = Database.find_exn "p" recovered in
  check_bool "constant restored" true (Relation.mem [ Term.Int 1; Term.Str "c" ] p);
  check_int "only the visible tuple" 1 (Relation.cardinality p)

let suite =
  [
    ("skolem recognition", `Quick, test_is_skolem);
    ("invert shapes", `Quick, test_invert_shapes);
    ("recover base", `Quick, test_recover_base);
    ("certain answers simple", `Quick, test_certain_answers_simple);
    ("certain answers sound", `Quick, test_certain_answers_sound);
    ("certain answers complete (car-loc-part)", `Quick, test_certain_answers_complete_carloc);
    ("matches MiniCon MCR", `Quick, test_matches_minicon_mcr);
    ("constants in view bodies", `Quick, test_skolem_constants_in_views);
  ]
