(* Tests for cost model M3: supplementary relations, the renaming drop
   heuristic, and Example 6.1. *)

open Vplan
open Helpers

let view_db_61 = Materialize.views Example_6_1.base Example_6_1.views

let test_figure5_views () =
  (* the materialized views of Figure 5 *)
  let v1 = Database.find_exn "v1" view_db_61 in
  let v2 = Database.find_exn "v2" view_db_61 in
  check_int "v1 has 4 tuples" 4 (Relation.cardinality v1);
  check_int "v2 has 4 tuples" 4 (Relation.cardinality v2);
  check_bool "(1,2) in v1" true (Relation.mem [ Term.Int 1; Term.Int 2 ] v1)

let test_supplementary_annotations () =
  let open Example_6_1 in
  let plan = M3.supplementary ~head:p2.Query.head p2.Query.body in
  match plan with
  | [ s1; s2 ] ->
      Alcotest.(check (list string)) "nothing dropped after g1 (B used later)" [] s1.M3.dropped;
      Alcotest.(check (list string)) "B dropped at the end" [ "B" ] s2.M3.dropped
  | _ -> Alcotest.fail "expected two steps"

let test_example61_costs () =
  (* the paper's comparison: under the supplementary-relation approach P1
     beats P2; the heuristic recovers P1's cost for P2 *)
  let open Example_6_1 in
  let cost_suppl (p : Query.t) =
    M3.cost_of_plan view_db_61 (M3.supplementary ~head:p.head p.body)
  in
  let cost_heur (p : Query.t) =
    M3.cost_of_plan view_db_61 (M3.heuristic ~views ~query ~head:p.head p.body)
  in
  let f1 = cost_suppl p1 and f2 = cost_suppl p2 in
  check_bool "costM3(F1) < costM3(F2)" true (f1 < f2);
  (* cells: v1 and v2 are 4 tuples x 2 attributes = 8 each; F1's GSRs are
     {<1>} twice (1 cell each); F2 keeps both attributes of v1 in GSR_1 *)
  check_int "F1 = 18 on Figure 5" 18 f1;
  check_int "F2 = 25 on Figure 5" 25 f2;
  check_int "heuristic recovers F1's cost for P2" f1 (cost_heur p2)

let test_example61_reversed_order () =
  (* "If we reverse the two subgoals ... P1 is still more efficient" *)
  let open Example_6_1 in
  let rev (p : Query.t) = List.rev p.body in
  let cost_suppl (p : Query.t) order =
    M3.cost_of_plan view_db_61 (M3.supplementary ~head:p.head order)
  in
  check_bool "reversed: P1 still beats P2" true (cost_suppl p1 (rev p1) < cost_suppl p2 (rev p2))

let test_m3_plans_compute_answers () =
  let open Example_6_1 in
  let truth = Eval.answers base query in
  let check_plan name plan (p : Query.t) =
    Alcotest.check relation_testable name truth (M3.answers view_db_61 ~head:p.head plan)
  in
  List.iter
    (fun (p : Query.t) ->
      check_plan "supplementary answers" (M3.supplementary ~head:p.head p.body) p;
      check_plan "heuristic answers" (M3.heuristic ~views ~query ~head:p.head p.body) p)
    [ p1; p2 ]

let test_heuristic_never_worse () =
  (* on every ordering, the heuristic's cost is at most the supplementary
     cost: it drops a superset of attributes *)
  let open Example_6_1 in
  List.iter
    (fun (p : Query.t) ->
      List.iter
        (fun order ->
          let cs = M3.cost_of_plan view_db_61 (M3.supplementary ~head:p.head order) in
          let ch =
            M3.cost_of_plan view_db_61 (M3.heuristic ~views ~query ~head:p.head order)
          in
          check_bool "heuristic <= supplementary" true (ch <= cs))
        (Orderings.permutations p.body))
    [ p1; p2 ]

let test_m3_optimal () =
  let open Example_6_1 in
  let annotate order = M3.supplementary ~head:p1.Query.head order in
  let plan, cost = M3.optimal view_db_61 ~annotate p1.Query.body in
  check_int "two steps" 2 (List.length plan);
  check_bool "cost positive" true (cost > 0);
  (* optimal over orderings is at most the written order's cost *)
  check_bool "no worse than given order" true
    (cost <= M3.cost_of_plan view_db_61 (annotate p1.Query.body))

let test_m3_gsr_sizes () =
  let open Example_6_1 in
  let plan = M3.heuristic ~views ~query ~head:p2.Query.head p2.Query.body in
  Alcotest.(check (list int)) "GSR sizes 1,1 (paper)" [ 1; 1 ]
    (M3.gsr_sizes view_db_61 plan)

let test_optimizer_m3 () =
  let open Example_6_1 in
  let t = Optimizer.create ~query ~views ~base in
  match
    ( Optimizer.best_m3 ~strategy:`Supplementary t,
      Optimizer.best_m3 ~strategy:`Heuristic t )
  with
  | Some s, Some h ->
      check_bool "heuristic no worse" true (h.m3_cost <= s.m3_cost);
      Alcotest.check relation_testable "m3 plan computes the answer"
        (Optimizer.answer t)
        (M3.answers (Optimizer.view_database t) ~head:h.m3_rewriting.Query.head h.m3_plan)
  | _ -> Alcotest.fail "expected plans"

(* dropping on the car-loc-part instance as a second scenario *)
let test_m3_carloc () =
  let open Car_loc_part in
  let view_db = Materialize.views base views in
  let truth = Eval.answers base query in
  let plan = M3.heuristic ~views ~query ~head:p2.Query.head p2.Query.body in
  Alcotest.check relation_testable "car-loc-part heuristic plan answers" truth
    (M3.answers view_db ~head:p2.Query.head plan)

let suite =
  [
    ("Figure 5 views", `Quick, test_figure5_views);
    ("supplementary annotations", `Quick, test_supplementary_annotations);
    ("Example 6.1 costs", `Quick, test_example61_costs);
    ("Example 6.1 reversed order", `Quick, test_example61_reversed_order);
    ("M3 plans compute the answer", `Quick, test_m3_plans_compute_answers);
    ("heuristic never worse", `Quick, test_heuristic_never_worse);
    ("M3 optimal over orderings", `Quick, test_m3_optimal);
    ("GSR sizes match the paper", `Quick, test_m3_gsr_sizes);
    ("optimizer M3", `Quick, test_optimizer_m3);
    ("M3 on car-loc-part", `Quick, test_m3_carloc);
  ]
