bin/vplan_repl.ml: Format Fun List String Unix Vplan
