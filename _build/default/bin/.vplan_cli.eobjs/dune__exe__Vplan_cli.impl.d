bin/vplan_cli.ml: Arg Cmd Cmdliner Format Fun List Term Vplan
