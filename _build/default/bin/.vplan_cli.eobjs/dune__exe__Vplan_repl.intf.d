bin/vplan_repl.mli:
