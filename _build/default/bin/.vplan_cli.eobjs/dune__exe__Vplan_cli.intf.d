bin/vplan_cli.mli:
