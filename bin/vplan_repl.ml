(* An interactive line-oriented REPL around the planner.

   dune exec bin/vplan_repl.exe

   Commands:
     query <rule>.        set the query
     view <rule>.         add a view definition
     fact <atom>.         add a base fact
     load <file>          load a program (first rule = query, rest views)
     data <file>          load base facts
     show                 print the current problem and database size
     rewrite [all]        GMRs (or all minimal rewritings)
     plan m1|m2|m3        cost-based plan over the current base facts
     answer               evaluate the query directly over the base facts
     certain              certain answers via inverse rules
     reset                clear everything
     help                 this text
     quit                 exit *)

type state = {
  mutable query : Vplan.Query.t option;
  mutable views : Vplan.View.t list;
  mutable base : Vplan.Database.t;
  mutable timeout_ms : float option;
  mutable max_steps : int option;
  mutable max_covers : int option;
  (* view-side preprocessing (equivalence classes), kept across commands
     so repeated rewrites don't regroup the same views; extended
     incrementally by [view], dropped on [load]/[reset] *)
  mutable catalog : Vplan.Catalog.t option;
}

let state =
  {
    query = None;
    views = [];
    base = Vplan.Database.empty;
    timeout_ms = None;
    max_steps = None;
    max_covers = None;
    catalog = None;
  }

let help () =
  print_endline
    "commands: query <rule>. | view <rule>. | fact <atom>. | load FILE | data FILE\n\
    \          show | rewrite [all] | plan m1|m2|m3 | answer | certain | reset | help | quit\n\
    \          set timeout MS | set max-steps N | set max-covers N | set off"

let parse_error e = Format.printf "error: %s@." (Vplan.Vplan_error.parse_to_string e)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_query f =
  match state.query with
  | None -> print_endline "no query set (use: query q(X) :- p(X).)"
  | Some query -> f query

let cmd_query rest =
  match Vplan.Parser.parse_rule rest with
  | Ok q ->
      state.query <- Some q;
      Format.printf "query: %a@." Vplan.Query.pp q
  | Error e -> parse_error e

let cmd_view rest =
  match Vplan.Parser.parse_rule rest with
  | Ok v -> (
      match Vplan.View.validate_set (v :: state.views) with
      | Ok () ->
          state.views <- state.views @ [ v ];
          (match state.catalog with
          | Some c -> (
              match Vplan.Catalog.add_views c [ v ] with
              | Ok c' -> state.catalog <- Some c'
              | Error _ -> state.catalog <- None)
          | None -> ());
          Format.printf "view: %a@." Vplan.Query.pp v
      | Error e -> Format.printf "error: %s@." e)
  | Error e -> parse_error e

let cmd_fact rest =
  match Vplan.Parser.parse_facts rest with
  | Ok facts ->
      List.iter
        (fun (pred, tuple) -> state.base <- Vplan.Database.add_fact pred tuple state.base)
        facts;
      Format.printf "%d fact(s) added@." (List.length facts)
  | Error e -> parse_error e

let cmd_load path =
  match Vplan.Planner.parse_problem (read_file path) with
  | Ok p ->
      state.query <- Some p.Vplan.Planner.query;
      state.views <- p.Vplan.Planner.views;
      state.catalog <- None;
      Format.printf "loaded query + %d view(s)@." (List.length p.views)
  | Error e -> Format.printf "error: %s@." e
  | exception Sys_error e -> Format.printf "error: %s@." e

let cmd_data path =
  match Vplan.Parser.parse_facts (read_file path) with
  | Ok facts ->
      state.base <- Vplan.Database.of_facts facts;
      Format.printf "loaded %d fact(s)@." (List.length facts)
  | Error e -> parse_error e
  | exception Sys_error e -> Format.printf "error: %s@." e

let cmd_show () =
  (match state.query with
  | Some q -> Format.printf "query: %a@." Vplan.Query.pp q
  | None -> print_endline "query: (unset)");
  List.iter (fun v -> Format.printf "view:  %a@." Vplan.Query.pp v) state.views;
  Format.printf "base facts: %d@." (Vplan.Database.total_size state.base)

let budget_of_state () =
  if state.timeout_ms = None && state.max_steps = None then None
  else
    (* a fresh budget per command: limits apply to each run, not the
       whole session *)
    Some (Vplan.Budget.create ?deadline_ms:state.timeout_ms ?max_steps:state.max_steps ())

(* The grouped view classes survive across commands: first rewrite pays
   for the grouping, later ones reuse it (until the view set changes). *)
let catalog_of_state ?budget () =
  match state.catalog with
  | Some c -> c
  | None ->
      let c = Vplan.Catalog.create_exn ?budget state.views in
      state.catalog <- Some c;
      c

let cmd_rewrite all =
  with_query (fun query ->
      let budget = budget_of_state () in
      let view_classes = Vplan.Catalog.view_classes (catalog_of_state ?budget ()) in
      let result =
        if all then
          Vplan.Corecover.all_minimal ?budget ?max_results:state.max_covers
            ~view_classes ~query ~views:state.views ()
        else
          Vplan.Corecover.gmrs ?budget ?max_covers:state.max_covers ~view_classes
            ~query ~views:state.views ()
      in
      (match result.rewritings with
      | [] -> print_endline "no equivalent rewriting"
      | rs -> List.iter (fun p -> Format.printf "%a@." Vplan.Query.pp p) rs);
      match result.completeness with
      | Vplan.Corecover.Complete -> ()
      | Vplan.Corecover.Truncated reason ->
          Format.printf "(truncated: %s)@." (Vplan.Vplan_error.to_string reason))

let cmd_set rest =
  match String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") with
  | [ "off" ] ->
      state.timeout_ms <- None;
      state.max_steps <- None;
      state.max_covers <- None;
      print_endline "budget off"
  | [ "timeout"; ms ] -> (
      match float_of_string_opt ms with
      | Some v when v > 0. ->
          state.timeout_ms <- Some v;
          Format.printf "timeout: %gms@." v
      | _ -> print_endline "usage: set timeout MS")
  | [ "max-steps"; n ] -> (
      match int_of_string_opt n with
      | Some v when v > 0 ->
          state.max_steps <- Some v;
          Format.printf "max-steps: %d@." v
      | _ -> print_endline "usage: set max-steps N")
  | [ "max-covers"; n ] -> (
      match int_of_string_opt n with
      | Some v when v > 0 ->
          state.max_covers <- Some v;
          Format.printf "max-covers: %d@." v
      | _ -> print_endline "usage: set max-covers N")
  | _ -> print_endline "usage: set timeout MS | set max-steps N | set max-covers N | set off"

let cmd_plan model =
  with_query (fun query ->
      let problem = { Vplan.Planner.query; views = state.views } in
      let cost_model =
        match model with
        | "m1" -> Some `M1
        | "m2" -> Some `M2
        | "m3" -> Some (`M3 `Heuristic)
        | _ -> None
      in
      match cost_model with
      | None -> print_endline "usage: plan m1|m2|m3"
      | Some cost_model -> (
          match Vplan.Planner.plan ~cost_model problem ~base:state.base with
          | None -> print_endline "no rewriting"
          | Some plan ->
              (match plan with
              | Vplan.Planner.Logical p -> Format.printf "rewriting: %a@." Vplan.Query.pp p
              | Vplan.Planner.Ordered { rewriting; order; cost } ->
                  Format.printf "rewriting: %a@." Vplan.Query.pp rewriting;
                  Format.printf "order:";
                  List.iter (fun a -> Format.printf " %a" Vplan.Atom.pp a) order;
                  Format.printf "@.cost: %d cells@." cost
              | Vplan.Planner.Annotated { rewriting; plan; cost } ->
                  Format.printf "rewriting: %a@." Vplan.Query.pp rewriting;
                  Format.printf "plan: %a@.cost: %d cells@." Vplan.M3.pp_plan plan cost);
              let answer = Vplan.Planner.execute problem ~base:state.base plan in
              Format.printf "answer: %a@." Vplan.Relation.pp answer))

let cmd_answer () =
  with_query (fun query ->
      Format.printf "%a@." Vplan.Relation.pp (Vplan.Eval.answers state.base query))

let cmd_certain () =
  with_query (fun query ->
      let view_db = Vplan.Materialize.views state.base state.views in
      Format.printf "%a@." Vplan.Relation.pp
        (Vplan.Inverse_rules.certain_answers ~views:state.views ~query view_db))

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let handle line =
  let line = String.trim line in
  if line = "" then true
  else
    let cmd, rest = split_command line in
    match cmd with
    | "quit" | "exit" -> false
    | "help" -> help (); true
    | "query" -> cmd_query rest; true
    | "view" -> cmd_view rest; true
    | "fact" -> cmd_fact rest; true
    | "load" -> cmd_load rest; true
    | "data" -> cmd_data rest; true
    | "show" -> cmd_show (); true
    | "set" -> cmd_set rest; true
    | "rewrite" -> cmd_rewrite (rest = "all"); true
    | "plan" -> cmd_plan rest; true
    | "answer" -> cmd_answer (); true
    | "certain" -> cmd_certain (); true
    | "reset" ->
        state.query <- None;
        state.views <- [];
        state.base <- Vplan.Database.empty;
        state.catalog <- None;
        print_endline "cleared";
        true
    | other ->
        Format.printf "unknown command %S (try: help)@." other;
        true

(* Fault containment: a command that raises must not kill the session.
   Typed errors, Invalid_argument/Failure (legacy guards) and file-system
   errors print one line; everything else is reported with its exception
   text.  Only End_of_file and quit end the loop. *)
let handle_safe line =
  try handle line with
  | Vplan.Vplan_error.Error e ->
      Format.printf "error: %s@." (Vplan.Vplan_error.to_string e);
      true
  | Invalid_argument msg | Failure msg | Sys_error msg ->
      Format.printf "error: %s@." msg;
      true

let () =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then print_endline "vplan repl \u{2014} type 'help' for commands";
  let rec loop () =
    if interactive then (print_string "vplan> "; flush stdout);
    match input_line stdin with
    | line -> if handle_safe line then loop ()
    | exception End_of_file -> ()
  in
  loop ()
