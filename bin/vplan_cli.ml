(* vplan command-line interface.

   Input files are Datalog programs: the first rule is the query, every
   other rule a view definition — except, for [classify], rules whose head
   predicate matches the query's, which are treated as candidate
   rewritings.  Data files contain ground facts. *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes: 0 complete, 1 runtime error, 2 parse/usage error, 3 result
   truncated or cut off by a budget — whether reported as an anytime
   result or raised from a search that cannot return partial answers
   (plan selection).  Runtime failures print one diagnostic line instead
   of dying with a backtrace. *)
let or_die f =
  try f () with
  | Vplan.Vplan_error.Error e ->
      Format.eprintf "error: %s@." (Vplan.Vplan_error.to_string e);
      exit
        (match e with
        | Vplan.Vplan_error.Parse _ -> 2
        | e when Vplan.Vplan_error.is_resource e -> 3
        | _ -> 1)
  | Invalid_argument msg | Failure msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      exit 1

let parse_program_file path =
  match Vplan.Parser.parse_program (read_file path) with
  | Error e ->
      Format.eprintf "%s:%s@." path (Vplan.Vplan_error.parse_to_string e);
      exit 2
  | Ok [] ->
      Format.eprintf "%s: empty program@." path;
      exit 2
  | Ok (query :: rest) -> (query, rest)

(* Shared --timeout/--max-steps/--max-covers options for budgeted
   commands. *)
let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"MS"
           ~doc:"Wall-clock deadline in milliseconds; on expiry the result \
                 produced so far is printed and the exit code is 3.")

let max_steps_arg =
  Arg.(value & opt (some int) None
       & info [ "max-steps" ] ~docv:"N"
           ~doc:"Deterministic step budget over all search loops; on \
                 exhaustion the exit code is 3.")

let max_covers_arg =
  Arg.(value & opt (some int) None
       & info [ "max-covers" ] ~docv:"N"
           ~doc:"Stop after enumerating $(docv) covers; when the cap fires \
                 the exit code is 3.")

let budget_of ~timeout ~max_steps =
  if timeout = None && max_steps = None then None
  else Some (Vplan.Budget.create ?deadline_ms:timeout ?max_steps ())

let split_views_and_candidates (query : Vplan.Query.t) rules =
  let qpred = query.head.Vplan.Atom.pred in
  List.partition (fun (r : Vplan.Query.t) -> r.head.Vplan.Atom.pred <> qpred) rules

(* ------------------------------------------------------------------ *)
(* rewrite                                                             *)

let rewrite_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let all_minimal =
    Arg.(value & flag & info [ "all-minimal" ] ~doc:"Run CoreCover* (all minimal rewritings for cost model M2) instead of GMRs only.")
  in
  let no_group =
    Arg.(value & flag & info [ "no-group" ] ~doc:"Disable equivalence-class grouping of views.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print view tuples and tuple-cores.") in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Fan the per-view evaluation across $(docv) domains (same result for any value).")
  in
  let run file all_minimal no_group domains verbose timeout max_steps max_covers =
   or_die @@ fun () ->
    let query, rest = parse_program_file file in
    let views, _ = split_views_and_candidates query rest in
    let budget = budget_of ~timeout ~max_steps in
    let result =
      if all_minimal then
        Vplan.Corecover.all_minimal ?budget ?max_results:max_covers
          ~group_views:(not no_group) ~domains ~query ~views ()
      else
        Vplan.Corecover.gmrs ?budget ?max_covers ~group_views:(not no_group)
          ~domains ~query ~views ()
    in
    Format.printf "query (minimized): %a@." Vplan.Query.pp result.minimized_query;
    Format.printf "views: %d in %d equivalence classes@." result.stats.num_views
      result.stats.num_view_classes;
    Format.printf "view tuples: %d (%d representatives)@." result.stats.num_view_tuples
      result.stats.num_representative_tuples;
    if verbose then begin
      Format.printf "tuple-cores:@.";
      List.iter
        (fun (tv, core) ->
          Format.printf "  %a covers %a@." Vplan.View_tuple.pp tv Vplan.Tuple_core.pp core)
        result.cores
    end;
    if result.filters <> [] then begin
      Format.printf "filter candidates:";
      List.iter (fun tv -> Format.printf " %a" Vplan.View_tuple.pp tv) result.filters;
      Format.printf "@."
    end;
    (match (result.rewritings, result.completeness) with
    | [], Vplan.Corecover.Complete -> Format.printf "no equivalent rewriting exists@."
    | [], Vplan.Corecover.Truncated _ ->
        Format.printf "no rewriting found before the cutoff@."
    | rs, _ ->
        Format.printf "%s (%d):@."
          (if all_minimal then "minimal rewritings" else "globally-minimal rewritings")
          (List.length rs);
        List.iter (fun p -> Format.printf "  %a@." Vplan.Query.pp p) rs);
    match result.completeness with
    | Vplan.Corecover.Complete -> ()
    | Vplan.Corecover.Truncated reason ->
        Format.eprintf "warning: result truncated: %s@."
          (Vplan.Vplan_error.to_string reason);
        exit 3
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Generate rewritings of a query using views (CoreCover).")
    Term.(const run $ file $ all_minimal $ no_group $ domains $ verbose
          $ timeout_arg $ max_steps_arg $ max_covers_arg)

(* ------------------------------------------------------------------ *)
(* plan                                                                *)

let database_of_file path =
  match Vplan.Parser.parse_facts (read_file path) with
  | Error e ->
      Format.eprintf "%s:%s@." path (Vplan.Vplan_error.parse_to_string e);
      exit 2
  | Ok facts -> Vplan.Database.of_facts facts

let plan_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let data =
    Arg.(required & opt (some file) None & info [ "data" ] ~docv:"DATA" ~doc:"Ground facts for the base relations.")
  in
  let cost =
    Arg.(value
         & opt (enum [ ("m1", `M1); ("m2", `M2); ("m3", `M3); ("m3-supplementary", `M3s) ]) `M2
         & info [ "cost" ] ~docv:"MODEL" ~doc:"Cost model: m1, m2, m3 (renaming heuristic) or m3-supplementary.")
  in
  let explain_flag =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the plan step by step with the sizes incurred.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Score candidate rewritings across $(docv) domains (same result for any value).")
  in
  let cost_mode =
    Arg.(value
         & opt (enum [ ("exact", `Exact); ("estimated", `Estimated) ]) `Exact
         & info [ "cost-mode" ] ~docv:"MODE"
             ~doc:"With --cost m2: cost candidates exactly (materialized \
                   view sizes) or from base-table statistics only.")
  in
  let run file data cost cost_mode explain domains timeout max_steps =
   or_die @@ fun () ->
    let query, rest = parse_program_file file in
    let views, _ = split_views_and_candidates query rest in
    let base = database_of_file data in
    let budget = budget_of ~timeout ~max_steps in
    let t = Vplan.Optimizer.create ~query ~views ~base in
    (match (cost, cost_mode) with
    | (`M1 | `M3 | `M3s), `Estimated ->
        Format.eprintf "error: --cost-mode estimated supports --cost m2 only@.";
        exit 2
    | `M2, `Estimated -> (
        (* statistics-only selection: join selectivities derived from the
           base-table catalog, views never materialized for costing; the
           realized cost of the chosen order is printed for comparison *)
        let stats = Vplan.Stats.collect base in
        let est = Vplan.Estimate.view_stats (Vplan.Estimate.of_stats stats) views in
        match
          Vplan.Select.best_m2_estimated ?budget est (Vplan.Optimizer.candidates t)
        with
        | None -> Format.printf "no rewriting@."
        | Some c ->
            Format.printf "rewriting: %a@." Vplan.Query.pp c.est_rewriting;
            Format.printf "join order:";
            List.iter (fun a -> Format.printf " %a" Vplan.Atom.pp a) c.est_order;
            Format.printf "@.cost (M2, estimated): %.1f@." c.est_cost;
            Format.printf "cost (M2, realized): %d@."
              (Vplan.M2.cost_of_order (Vplan.Optimizer.view_database t) c.est_order);
            if explain then
              Vplan.Explain.m2 Format.std_formatter
                (Vplan.Optimizer.view_database t) c.est_order)
    | cost, `Exact ->
    match cost with
    | `M1 -> (
        match Vplan.Optimizer.best_m1 t with
        | None -> Format.printf "no rewriting@."
        | Some p ->
            Format.printf "rewriting: %a@.cost (subgoals): %d@." Vplan.Query.pp p
              (Vplan.M1.cost p))
    | `M2 -> (
        match Vplan.Optimizer.best_m2 ?budget ~domains t with
        | None -> Format.printf "no rewriting@."
        | Some c ->
            Format.printf "rewriting: %a@." Vplan.Query.pp c.m2_rewriting;
            Format.printf "join order:";
            List.iter (fun a -> Format.printf " %a" Vplan.Atom.pp a) c.m2_order;
            Format.printf "@.cost (M2): %d@." c.m2_cost;
            if explain then
              Vplan.Explain.m2 Format.std_formatter (Vplan.Optimizer.view_database t)
                c.m2_order)
    | (`M3 | `M3s) as strategy -> (
        let strategy = if strategy = `M3 then `Heuristic else `Supplementary in
        match Vplan.Optimizer.best_m3 ~strategy ?budget ~domains t with
        | None -> Format.printf "no rewriting@."
        | Some c ->
            Format.printf "rewriting: %a@." Vplan.Query.pp c.m3_rewriting;
            Format.printf "plan: %a@." Vplan.M3.pp_plan c.m3_plan;
            Format.printf "cost (M3): %d@." c.m3_cost;
            if explain then
              Vplan.Explain.m3 Format.std_formatter (Vplan.Optimizer.view_database t)
                c.m3_plan));
    let truth = Vplan.Optimizer.answer t in
    Format.printf "query answer size: %d@." (Vplan.Relation.cardinality truth)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Pick a cost-optimal rewriting and physical plan over a concrete database.")
    Term.(const run $ file $ data $ cost $ cost_mode $ explain_flag $ domains
          $ timeout_arg $ max_steps_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let data =
    Arg.(value & opt (some file) None
         & info [ "data" ] ~docv:"DATA"
             ~doc:"Ground facts for the base relations; when given, the \
                   trace also covers view materialization and plan \
                   selection.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Fan the per-view evaluation across $(docv) domains.")
  in
  let analyze_flag =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Execute the chosen plan with an operator profile attached \
                   and print the operator tree with estimated vs actual rows \
                   and per-query q-error (requires --data).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the request's spans (and, with --analyze, its \
                   operator profile) as a Chrome trace.json loadable in \
                   Perfetto / chrome://tracing.")
  in
  let run file data analyze trace_out domains timeout max_steps max_covers =
   or_die @@ fun () ->
    let query, rest = parse_program_file file in
    let views, _ = split_views_and_candidates query rest in
    let budget = budget_of ~timeout ~max_steps in
    let clock = Vplan.Budget.create () in
    let label, spans, analyzed =
      match (analyze, data) with
      | true, None -> failwith "--analyze needs --data FILE"
      | true, Some data -> (
          (* the same backend the server's `explain analyze` uses *)
          let base = database_of_file data in
          let cat =
            match Vplan.Catalog.create views with
            | Ok c -> c
            | Error e -> failwith e
          in
          let svc = Vplan.Service.create cat in
          Vplan.Service.set_base svc base;
          let outcome, spans =
            Vplan.Trace.run (fun () ->
                Vplan.Service.analyze ?budget ?max_covers ~domains svc query)
          in
          match outcome with
          | None -> ("analyze none", spans, None)
          | Some o ->
              let cost =
                match o.Vplan.Service.an_cost with
                | Vplan.Service.Cells c -> Printf.sprintf "cost=%d" c
                | Vplan.Service.Cells_est c -> Printf.sprintf "cost_est=%.1f" c
              in
              let q =
                if Float.is_nan o.Vplan.Service.an_qerror then "-"
                else Printf.sprintf "%.2f" o.Vplan.Service.an_qerror
              in
              ( Printf.sprintf "analyze %s candidates=%d answers=%d qerror=%s"
                  cost o.Vplan.Service.an_candidates o.Vplan.Service.an_answers
                  q,
                spans,
                Some o ))
      | false, None ->
          let result, spans =
            Vplan.Trace.run (fun () ->
                Vplan.Corecover.gmrs ?budget ?max_covers ~domains ~query ~views ())
          in
          ( Printf.sprintf "rewritings=%d" (List.length result.rewritings),
            spans,
            None )
      | false, Some data ->
          (* the same pipeline [plan --cost m2] runs, with each stage under
             the tracer: materialize, CoreCover*, branch-and-bound *)
          let base = database_of_file data in
          let choice, spans =
            Vplan.Trace.run (fun () ->
                let view_db =
                  Vplan.Obs.phase "materialize" (fun () ->
                      Vplan.Materialize.views base views)
                in
                let r =
                  Vplan.Corecover.all_minimal ?budget ?max_results:max_covers
                    ~domains ~query ~views ()
                in
                let memo = Vplan.Subplan.create () in
                Vplan.Select.best_m2 ~memo ?budget ~domains
                  ~filters:r.Vplan.Corecover.filters view_db
                  r.Vplan.Corecover.rewritings)
          in
          ( (match choice with
            | Some c -> Printf.sprintf "plan cost=%d" c.Vplan.Select.m2_cost
            | None -> "plan none"),
            spans,
            None )
    in
    let ms = Vplan.Budget.elapsed_ms clock in
    Format.printf "explain %s@." label;
    (match Vplan.Hypergraph.classify query.Vplan.Query.body with
    | Vplan.Hypergraph.Cyclic -> Format.printf "classification: cyclic@."
    | Vplan.Hypergraph.Acyclic t ->
        Format.printf "classification: acyclic@.";
        if t.Vplan.Hypergraph.root >= 0 then
          Format.printf "join tree:@.%a@." Vplan.Hypergraph.pp_tree t);
    Format.printf "request %.3f ms, traced %.3f ms in %d spans@." ms
      (Vplan.Trace.top_level_total spans)
      (List.length spans);
    Format.printf "%a" Vplan.Trace.pp_tree spans;
    (match analyzed with
    | None -> ()
    | Some o ->
        Format.printf "%a@." Vplan.Query.pp o.Vplan.Service.an_rewriting;
        Format.printf "order: %a@."
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             Vplan.Atom.pp)
          o.Vplan.Service.an_order;
        Format.printf "profile:@.%a" Vplan.Profile.pp_tree
          o.Vplan.Service.an_profile);
    match trace_out with
    | None -> ()
    | Some path ->
        let extra =
          match analyzed with
          | Some o -> Vplan.Profile.chrome_events o.Vplan.Service.an_profile
          | None -> []
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Vplan.Trace.chrome_json ~extra spans);
            output_char oc '\n');
        Format.printf "trace written to %s@." path
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Trace one rewrite (or, with --data, plan-selection) request and \
             print its span tree with per-phase wall time.  With --analyze, \
             also execute the chosen plan and print its operator tree with \
             estimated vs actual rows.")
    Term.(const run $ file $ data $ analyze_flag $ trace_out $ domains
          $ timeout_arg $ max_steps_arg $ max_covers_arg)

(* ------------------------------------------------------------------ *)
(* classify                                                            *)

let classify_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
   or_die @@ fun () ->
    let query, rest = parse_program_file file in
    let views, candidates = split_views_and_candidates query rest in
    if candidates = [] then Format.printf "no candidate rewritings in the file@."
    else begin
      let lmrs =
        List.filter (Vplan.Classify.is_lmr ~views ~query) candidates
      in
      List.iter
        (fun p ->
          let is_r = Vplan.Classify.is_rewriting ~views ~query p in
          Format.printf "%a@." Vplan.Query.pp p;
          Format.printf "  equivalent rewriting: %b@." is_r;
          if is_r then begin
            Format.printf "  minimal as query:     %b@." (Vplan.Classify.is_minimal_query p);
            Format.printf "  locally minimal:      %b@."
              (Vplan.Classify.is_lmr ~views ~query p);
            Format.printf "  containment minimal:  %b@."
              (Vplan.Classify.is_cmr_among ~lmrs p);
            Format.printf "  globally minimal:     %b@."
              (Vplan.Classify.is_gmr_among
                 ~candidates:(Vplan.Corecover.gmrs ~query ~views ()).rewritings p)
          end)
        candidates
    end
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Classify candidate rewritings (rules sharing the query's head predicate) as minimal / LMR / CMR / GMR.")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* certain                                                             *)

let certain_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let data =
    Arg.(required & opt (some file) None & info [ "data" ] ~docv:"DATA" ~doc:"Ground facts for the base relations.")
  in
  let algorithm =
    Arg.(value
         & opt (enum [ ("minicon", `Minicon); ("inverse-rules", `Inverse) ]) `Minicon
         & info [ "algorithm" ] ~docv:"ALGO" ~doc:"minicon (maximally-contained union) or inverse-rules.")
  in
  let run file data algorithm =
   or_die @@ fun () ->
    let query, rest = parse_program_file file in
    let views, _ = split_views_and_candidates query rest in
    let base = database_of_file data in
    let view_db = Vplan.Materialize.views base views in
    (match algorithm with
    | `Minicon -> (
        match Vplan.Minicon.maximally_contained ~query ~views () with
        | None -> Format.printf "no contained rewriting@."
        | Some union ->
            Format.printf "maximally-contained union:@.%a@." Vplan.Ucq.pp union;
            Format.printf "certain answers: %a@." Vplan.Relation.pp
              (Vplan.Eval.answers_ucq view_db union))
    | `Inverse ->
        Format.printf "certain answers: %a@." Vplan.Relation.pp
          (Vplan.Inverse_rules.certain_answers ~views ~query view_db));
    Format.printf "true answer over the given base: %a@." Vplan.Relation.pp
      (Vplan.Eval.answers base query)
  in
  Cmd.v
    (Cmd.info "certain"
       ~doc:"Compute the certain answers under the open-world assumption (maximally-contained rewriting).")
    Term.(const run $ file $ data $ algorithm)

(* ------------------------------------------------------------------ *)
(* datalog                                                             *)

let datalog_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM") in
  let data =
    Arg.(required & opt (some file) None & info [ "data" ] ~docv:"DATA" ~doc:"Ground EDB facts.")
  in
  let query_arg =
    Arg.(required & opt (some string) None & info [ "query" ] ~docv:"ATOM" ~doc:"Query atom, e.g. 'reach(sfo, X)'.")
  in
  let magic = Arg.(value & flag & info [ "magic" ] ~doc:"Use the magic-sets transformation.") in
  let run file data query_str magic =
   or_die @@ fun () ->
    let program =
      match Vplan.Program.parse (read_file file) with
      | Ok p -> p
      | Error msg ->
          Format.eprintf "%s: %s@." file msg;
          exit 2
    in
    let base = database_of_file data in
    let query =
      match Vplan.Parser.parse_atom query_str with
      | Ok e -> e
      | Error e ->
          Format.eprintf "--query: %s@." (Vplan.Vplan_error.parse_to_string e);
          exit 2
    in
    let answers =
      if magic then Vplan.Magic.answers program base ~query
      else Vplan.Recursive_views.answers_direct ~program ~query base
    in
    Format.printf "%a@." Vplan.Relation.pp answers
  in
  Cmd.v
    (Cmd.info "datalog"
       ~doc:"Evaluate a (possibly recursive) Datalog program bottom-up, optionally with magic sets.")
    Term.(const run $ file $ data $ query_arg $ magic)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate_cmd =
  let shape =
    Arg.(value
         & opt (enum [ ("star", Vplan.Generator.Star); ("chain", Vplan.Generator.Chain);
                       ("cycle", Vplan.Generator.Cycle); ("clique", Vplan.Generator.Clique);
                       ("path", Vplan.Generator.Path);
                       ("random", Vplan.Generator.Random_shape) ])
             Vplan.Generator.Star
         & info [ "shape" ] ~docv:"SHAPE"
             ~doc:"star, chain, cycle, clique, path or random.")
  in
  let views = Arg.(value & opt int 20 & info [ "views" ] ~docv:"N") in
  let subgoals = Arg.(value & opt int 8 & info [ "subgoals" ] ~docv:"K") in
  let nondist = Arg.(value & opt int 0 & info [ "nondistinguished" ] ~docv:"D") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let run shape views subgoals nondist seed =
   or_die @@ fun () ->
    let config =
      {
        Vplan.Generator.default with
        shape;
        num_views = views;
        query_subgoals = subgoals;
        num_relations = subgoals;
        nondistinguished_per_view = nondist;
        seed;
      }
    in
    let inst = Vplan.Generator.generate_with_rewriting config in
    Format.printf "%% generated %s workload (seed %d)@."
      (match shape with
      | Vplan.Generator.Star -> "star"
      | Vplan.Generator.Chain -> "chain"
      | Vplan.Generator.Cycle -> "cycle"
      | Vplan.Generator.Clique -> "clique"
      | Vplan.Generator.Path -> "path"
      | Vplan.Generator.Random_shape -> "random")
      seed;
    Format.printf "%a.@." Vplan.Query.pp inst.query;
    List.iter (fun v -> Format.printf "%a.@." Vplan.Query.pp v) inst.views
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a star/chain/random workload as a Datalog program.")
    Term.(const run $ shape $ views $ subgoals $ nondist $ seed)

let () =
  let info =
    Cmd.info "vplan" ~version:"1.0.0"
      ~doc:"Generating efficient plans for queries using views (SIGMOD 2001 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ rewrite_cmd; plan_cmd; explain_cmd; classify_cmd; certain_cmd;
            datalog_cmd; generate_cmd ]))
