(* vplan_server — the resident rewriting service, two front ends:

   - TCP (default): a concurrent socket server.  One poller domain owns
     the sockets, a fixed pool of worker domains runs requests off a
     bounded queue, and a full queue sheds with "err busy" instead of
     building a latency backlog.  SIGTERM/SIGINT drain gracefully.
   - stdio (--stdio): the original one-session line protocol on
     stdin/stdout, for piping and for the cram tests.

   Both speak exactly the same protocol (Vplan.Protocol). *)

let usage () =
  prerr_endline
    "usage: vplan_server [--catalog FILE] [--cache N] [--domains N]\n\
    \                    [--timeout MS] [--max-steps N] [--max-covers N]\n\
    \                    [--slow-ms MS] [--cost-mode exact|estimated]\n\
    \                    [--stdio | --listen PORT] [--host ADDR]\n\
    \                    [--workers N] [--queue N] [--max-requests N]\n\
    \                    [--port-file FILE] [--data-dir DIR]";
  exit 2

type mode = Tcp | Stdio

let () =
  let catalog_file = ref None in
  let cache_capacity = ref None in
  let domains = ref None in
  let timeout_ms = ref None in
  let max_steps = ref None in
  let max_covers = ref None in
  let slow_ms = ref None in
  let cost_mode = ref None in
  let mode = ref Tcp in
  let host = ref "127.0.0.1" in
  let port = ref 0 in
  let workers = ref 2 in
  let queue = ref 128 in
  let max_requests = ref None in
  let port_file = ref None in
  let data_dir = ref None in
  let int_arg n k =
    match int_of_string_opt n with Some v when v > 0 -> k v | _ -> usage ()
  in
  let float_arg ?(min = 0.) ms k =
    match float_of_string_opt ms with Some v when v >= min -> k v | _ -> usage ()
  in
  let rec parse_args = function
    | [] -> ()
    | "--catalog" :: path :: rest ->
        catalog_file := Some path;
        parse_args rest
    | "--cache" :: n :: rest ->
        int_arg n (fun v -> cache_capacity := Some v);
        parse_args rest
    | "--domains" :: n :: rest ->
        int_arg n (fun v -> domains := Some v);
        parse_args rest
    | "--timeout" :: ms :: rest ->
        float_arg ~min:epsilon_float ms (fun v -> timeout_ms := Some v);
        parse_args rest
    | "--max-steps" :: n :: rest ->
        int_arg n (fun v -> max_steps := Some v);
        parse_args rest
    | "--max-covers" :: n :: rest ->
        int_arg n (fun v -> max_covers := Some v);
        parse_args rest
    | "--slow-ms" :: ms :: rest ->
        float_arg ms (fun v -> slow_ms := Some v);
        parse_args rest
    | "--cost-mode" :: m :: rest ->
        (match m with
        | "exact" -> cost_mode := Some Vplan.Service.Exact
        | "estimated" -> cost_mode := Some Vplan.Service.Estimated
        | _ -> usage ());
        parse_args rest
    | "--stdio" :: rest ->
        mode := Stdio;
        parse_args rest
    | "--listen" :: p :: rest -> (
        match int_of_string_opt p with
        | Some v when v >= 0 && v < 65536 ->
            port := v;
            parse_args rest
        | _ -> usage ())
    | "--host" :: h :: rest ->
        host := h;
        parse_args rest
    | "--workers" :: n :: rest ->
        int_arg n (fun v -> workers := v);
        parse_args rest
    | "--queue" :: n :: rest ->
        int_arg n (fun v -> queue := v);
        parse_args rest
    | "--max-requests" :: n :: rest ->
        int_arg n (fun v -> max_requests := Some v);
        parse_args rest
    | "--port-file" :: f :: rest ->
        port_file := Some f;
        parse_args rest
    | "--data-dir" :: d :: rest ->
        data_dir := Some d;
        parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* fault-injection sites are inert unless VPLAN_FAILPOINTS arms them;
     the crash-matrix tests drive the server through this hook *)
  Vplan.Failpoint.init_from_env ();
  let fatal fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
  (* Recovery happens before any front end serves: last-good snapshot,
     then the journal's surviving suffix, exactly once. *)
  let recovered =
    match !data_dir with
    | None -> None
    | Some dir -> (
        match Vplan.Store.open_dir dir with
        | Error e -> fatal "store: %s" e
        | Ok (st, r) -> (
            let state =
              match r.Vplan.Store.r_snapshot with
              | None -> Ok (None, None, None)
              | Some snap -> (
                  match Vplan.Persist.state_of_snapshot snap with
                  | Ok (cat, base, stats) -> Ok (Some cat, base, stats)
                  | Error e -> Error e)
            in
            match
              Result.bind state (fun (cat, base, stats) ->
                  Result.map
                    (fun (cat, base, replayed) -> (cat, base, stats, replayed))
                    (Vplan.Persist.replay (cat, base) r.Vplan.Store.r_replayed))
            with
            | Error e -> fatal "recovery: %s" e
            | Ok (cat, base, stats, replayed) ->
                (* snapshot statistics describe the snapshot's own base;
                   a journaled Load_data replaced it, so rescan instead *)
                let stats =
                  if
                    List.exists
                      (fun (_, op) ->
                        match op with
                        | Vplan.Record.Load_data _ -> true
                        | _ -> false)
                      r.Vplan.Store.r_replayed
                  then None
                  else stats
                in
                Printf.printf
                  "store dir=%s recovered views=%d replayed=%d \
                   truncated_bytes=%d\n\
                   %!"
                  dir
                  (match cat with
                  | Some c -> Vplan.Catalog.num_views c
                  | None -> 0)
                  replayed r.Vplan.Store.r_truncated_bytes;
                Some (st, r, cat, base, stats)))
  in
  let shared =
    let store, boot_replayed, boot_truncated =
      match recovered with
      | None -> (None, 0, 0)
      | Some (st, r, _, _, _) ->
          ( Some st,
            List.length r.Vplan.Store.r_replayed,
            r.Vplan.Store.r_truncated_bytes )
    in
    Vplan.Protocol.create_shared ?cache_capacity:!cache_capacity
      ?domains:!domains ?timeout_ms:!timeout_ms ?max_steps:!max_steps
      ?max_covers:!max_covers ?slow_ms:!slow_ms ?cost_mode:!cost_mode ?store
      ~boot_replayed ~boot_truncated ()
  in
  (match recovered with
  | None | Some (_, _, None, _, _) -> ()
  | Some (_, _, Some cat, base, stats) ->
      Vplan.Protocol.install_catalog shared cat;
      (match (Vplan.Protocol.service shared, base) with
      | Some s, Some db -> Vplan.Service.set_base ?stats s db
      | _ -> ()));
  let close_store () =
    match Vplan.Protocol.store shared with
    | Some st -> Vplan.Store.close st
    | None -> ()
  in
  (* --catalog behaves exactly like an initial "catalog load FILE"
     request: same ok/err line, but a failure is fatal at startup. *)
  (match !catalog_file with
  | None -> ()
  | Some path ->
      let boot = Vplan.Protocol.new_session shared in
      let reply =
        Vplan.Protocol.handle_lines shared boot [ "catalog load " ^ path ]
      in
      print_string reply.Vplan.Protocol.text;
      flush stdout;
      if Vplan.Protocol.service shared = None then exit 1);
  match !mode with
  | Stdio ->
      let session = Vplan.Protocol.new_session shared in
      let interactive = Unix.isatty Unix.stdin in
      if interactive then
        print_endline "vplan server \u{2014} type 'help' for commands";
      let read_line () =
        match input_line stdin with
        | line -> Some line
        | exception End_of_file -> None
      in
      let rec loop () =
        if interactive then (
          print_string "vplan> ";
          flush stdout);
        match input_line stdin with
        | line ->
            let reply = Vplan.Protocol.handle shared session ~read_line line in
            print_string reply.Vplan.Protocol.text;
            flush stdout;
            if not reply.Vplan.Protocol.close then loop ()
        | exception End_of_file -> ()
      in
      loop ();
      close_store ()
  | Tcp ->
      let handler () =
        let session = Vplan.Protocol.new_session shared in
        fun lines ->
          let reply = Vplan.Protocol.handle_lines shared session lines in
          {
            Vplan.Net_server.body = reply.Vplan.Protocol.text;
            close = reply.Vplan.Protocol.close;
          }
      in
      let server =
        Vplan.Net_server.create ~host:!host ~port:!port ~workers:!workers
          ~queue_capacity:!queue ?max_requests:!max_requests
          ~extra_lines:Vplan.Protocol.extra_lines ~handler ()
      in
      let bound = Vplan.Net_server.port server in
      (match !port_file with
      | None -> ()
      | Some f ->
          let oc = open_out f in
          output_string oc (string_of_int bound);
          output_char oc '\n';
          close_out oc);
      Printf.printf "listening host=%s port=%d workers=%d queue=%d\n%!" !host
        bound !workers !queue;
      let stop _ = Vplan.Net_server.stop server in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Vplan.Net_server.run server;
      (* every acked request's journal record is already fsynced; this
         closes the fd so the "drained" line means "nothing in flight,
         nothing buffered" *)
      close_store ();
      Printf.printf "drained\n%!"
