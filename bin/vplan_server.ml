(* The resident rewriting server: a line-oriented request loop around
   Vplan.Service.

     dune exec bin/vplan_server.exe -- [--catalog FILE] [--cache N]
       [--domains N] [--timeout MS] [--max-steps N] [--max-covers N]

   Protocol (one request per line on stdin, responses on stdout):

     catalog load FILE     load a view catalog (every rule in FILE is a view)
     catalog add <rule>.   add one view to the current catalog (new generation)
     catalog remove NAME   remove a view by name (new generation)
     rewrite <rule>.       serve one request:
                             ok <n> <hit|miss|bypass>
                             <n rewriting lines>
                             truncated: <reason>          (when budgeted out)
     batch N               read the next N lines as rewrite requests and
                           serve them over the domain pool, in order
     data load FILE        load ground facts as the base database (enables plan)
     plan <rule>.          end-to-end plan selection:
                             ok plan cost=C candidates=K trace=T
                             <chosen rewriting line>
                             order: <join order>
     explain <rule>.       trace one request (plan when a base database is
                           loaded, rewrite otherwise) and print its span
                           tree with per-phase wall time
     stats [--json]        catalog, cache, and latency counters
     metrics               Prometheus-style vplan_* metric lines
     set timeout MS | set max-steps N | set max-covers N
     set slow-ms MS | set off
     help                  this text
     quit                  exit

   Every "ok" response to rewrite/batch/plan carries a per-request trace
   id (trace=T); requests slower than --slow-ms are logged to stderr as
   "slow trace=T ...", so a slow line joins its response by id.

   Every failure is a single "err <reason>" line; the loop never dies on
   a bad request. *)

type settings = {
  mutable timeout_ms : float option;
  mutable max_steps : int option;
  mutable max_covers : int option;
  mutable domains : int;
  mutable cache_capacity : int;
  mutable slow_ms : float option;
  mutable next_trace : int;
  mutable service : Vplan.Service.t option;
}

let settings =
  {
    timeout_ms = None;
    max_steps = None;
    max_covers = None;
    domains = 1;
    cache_capacity = 512;
    slow_ms = None;
    next_trace = 0;
    service = None;
  }

let next_trace_id () =
  settings.next_trace <- settings.next_trace + 1;
  settings.next_trace

let slow_log ~trace ~ms detail =
  match settings.slow_ms with
  | Some threshold when ms >= threshold ->
      Format.eprintf "slow trace=%d ms=%.3f %s@." trace ms detail
  | _ -> ()

let help () =
  print_endline
    "commands: catalog load FILE | catalog add <rule>. | catalog remove NAME\n\
    \          rewrite <rule>. | batch N | data load FILE | plan <rule>.\n\
    \          explain <rule>. | stats [--json] | metrics\n\
    \          set timeout MS | set max-steps N | set max-covers N\n\
    \          set slow-ms MS | set off\n\
    \          help | quit"

let err fmt = Format.kasprintf (fun s -> Format.printf "err %s@." s) fmt

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A fresh budget per request: one adversarial query cannot stall the
   loop, and deadlines start when the request is picked up. *)
let fresh_budget () =
  if settings.timeout_ms = None && settings.max_steps = None then None
  else
    Some
      (Vplan.Budget.create ?deadline_ms:settings.timeout_ms
         ?max_steps:settings.max_steps ())

let with_service f =
  match settings.service with
  | None -> err "no catalog loaded (use: catalog load FILE)"
  | Some s -> f s

let install_catalog cat =
  match settings.service with
  | None -> settings.service <- Some (Vplan.Service.create ~cache_capacity:settings.cache_capacity cat)
  | Some s -> Vplan.Service.set_catalog s cat

let cmd_catalog_load path =
  match Vplan.Parser.parse_program (read_file path) with
  | Error e -> err "%s" (Vplan.Vplan_error.parse_to_string e)
  | exception Sys_error e -> err "%s" e
  | Ok views -> (
      match Vplan.Catalog.create views with
      | Error e -> err "%s" e
      | Ok cat ->
          install_catalog cat;
          Format.printf "ok catalog generation=%d views=%d classes=%d@."
            (Vplan.Catalog.generation cat)
            (Vplan.Catalog.num_views cat)
            (Vplan.Catalog.num_classes cat))

let cmd_catalog_add rest =
  with_service (fun s ->
      match Vplan.Parser.parse_rule rest with
      | Error e -> err "%s" (Vplan.Vplan_error.parse_to_string e)
      | Ok v -> (
          match Vplan.Catalog.add_views (Vplan.Service.catalog s) [ v ] with
          | Error e -> err "%s" e
          | Ok cat ->
              Vplan.Service.set_catalog s cat;
              Format.printf "ok catalog generation=%d views=%d classes=%d@."
                (Vplan.Catalog.generation cat)
                (Vplan.Catalog.num_views cat)
                (Vplan.Catalog.num_classes cat)))

let cmd_catalog_remove name =
  with_service (fun s ->
      match Vplan.Catalog.remove_views (Vplan.Service.catalog s) [ name ] with
      | Error e -> err "%s" e
      | Ok cat ->
          Vplan.Service.set_catalog s cat;
          Format.printf "ok catalog generation=%d views=%d classes=%d@."
            (Vplan.Catalog.generation cat)
            (Vplan.Catalog.num_views cat)
            (Vplan.Catalog.num_classes cat))

let cmd_catalog rest =
  let sub, arg =
    match String.index_opt rest ' ' with
    | None -> (rest, "")
    | Some i ->
        ( String.sub rest 0 i,
          String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) )
  in
  match sub with
  | "load" when arg <> "" -> cmd_catalog_load arg
  | "add" when arg <> "" -> cmd_catalog_add arg
  | "remove" when arg <> "" -> cmd_catalog_remove arg
  | _ -> err "usage: catalog load FILE | catalog add <rule>. | catalog remove NAME"

let print_outcome (o : Vplan.Service.outcome) =
  let source =
    match o.Vplan.Service.source with
    | Vplan.Service.Hit -> "hit"
    | Vplan.Service.Miss -> "miss"
    | Vplan.Service.Bypass -> "bypass"
  in
  let trace = next_trace_id () in
  Format.printf "ok %d %s trace=%d@."
    (List.length o.Vplan.Service.rewritings)
    source trace;
  slow_log ~trace ~ms:o.Vplan.Service.ms (Printf.sprintf "source=%s" source);
  List.iter (fun p -> Format.printf "%a@." Vplan.Query.pp p) o.Vplan.Service.rewritings;
  match o.Vplan.Service.completeness with
  | Vplan.Corecover.Complete -> ()
  | Vplan.Corecover.Truncated reason ->
      Format.printf "truncated: %s@." (Vplan.Vplan_error.to_string reason)

let cmd_rewrite rest =
  with_service (fun s ->
      match Vplan.Parser.parse_rule rest with
      | Error e -> err "%s" (Vplan.Vplan_error.parse_to_string e)
      | Ok query ->
          print_outcome
            (Vplan.Service.rewrite ?budget:(fresh_budget ())
               ?max_covers:settings.max_covers ~domains:settings.domains s query))

let cmd_batch rest =
  match int_of_string_opt rest with
  | None | Some 0 -> err "usage: batch N (then N rewrite-request lines)"
  | Some n when n < 0 -> err "usage: batch N (then N rewrite-request lines)"
  | Some n ->
      with_service (fun s ->
          let lines =
            List.init n (fun _ -> match input_line stdin with
              | line -> Some line
              | exception End_of_file -> None)
          in
          let parsed =
            List.filter_map
              (fun line ->
                Option.map (fun l -> Vplan.Parser.parse_rule (String.trim l)) line)
              lines
          in
          let queries =
            List.filter_map (function Ok q -> Some q | Error _ -> None) parsed
          in
          if List.length parsed < n then err "batch: end of input"
          else if List.length queries < List.length parsed then
            err "batch: every line must be a rule"
          else
            (* the whole batch fans out over the domain pool; answers come
               back in request order *)
            List.iter print_outcome
              (Vplan.Service.rewrite_batch ~make_budget:fresh_budget
                 ?max_covers:settings.max_covers ~domains:settings.domains s
                 queries))

let cmd_data rest =
  let sub, arg =
    match String.index_opt rest ' ' with
    | None -> (rest, "")
    | Some i ->
        ( String.sub rest 0 i,
          String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) )
  in
  match sub with
  | "load" when arg <> "" ->
      with_service (fun s ->
          match Vplan.Parser.parse_facts (read_file arg) with
          | Error e -> err "%s" (Vplan.Vplan_error.parse_to_string e)
          | exception Sys_error e -> err "%s" e
          | Ok facts ->
              Vplan.Service.set_base s (Vplan.Database.of_facts facts);
              Format.printf "ok data facts=%d@." (List.length facts))
  | _ -> err "usage: data load FILE"

let cmd_plan rest =
  with_service (fun s ->
      match Vplan.Parser.parse_rule rest with
      | Error e -> err "%s" (Vplan.Vplan_error.parse_to_string e)
      | Ok query -> (
          match
            Vplan.Service.plan ?budget:(fresh_budget ())
              ?max_covers:settings.max_covers ~domains:settings.domains s query
          with
          | None ->
              Format.printf "ok plan none trace=%d@." (next_trace_id ())
          | Some o ->
              let trace = next_trace_id () in
              Format.printf "ok plan cost=%d candidates=%d trace=%d@."
                o.Vplan.Service.plan_cost o.Vplan.Service.plan_candidates trace;
              slow_log ~trace ~ms:o.Vplan.Service.plan_ms "source=plan";
              Format.printf "%a@." Vplan.Query.pp o.Vplan.Service.plan_rewriting;
              Format.printf "order: %a@."
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                   Vplan.Atom.pp)
                o.Vplan.Service.plan_order))

let cmd_stats rest =
  with_service (fun s ->
      let st = Vplan.Service.stats s in
      let l = st.Vplan.Service.latency in
      match rest with
      | "--json" ->
          (* one line, so a scraper reads exactly one response line *)
          Format.printf
            "{\"generation\":%d,\"views\":%d,\"classes\":%d,\"requests\":%d,\
             \"hits\":%d,\"misses\":%d,\"bypasses\":%d,\"evictions\":%d,\
             \"cache_size\":%d,\"cache_capacity\":%d,\"truncated\":%d,\
             \"plan_requests\":%d,\"generation_resets\":%d,\
             \"latency\":{\"count\":%d,\"mean_ms\":%.3f,\"p50_ms\":%.3f,\
             \"p95_ms\":%.3f,\"max_ms\":%.3f}}@."
            st.Vplan.Service.generation st.Vplan.Service.num_views
            st.Vplan.Service.num_view_classes st.Vplan.Service.requests
            st.Vplan.Service.hits st.Vplan.Service.misses
            st.Vplan.Service.bypasses st.Vplan.Service.evictions
            st.Vplan.Service.cache_size st.Vplan.Service.cache_capacity
            st.Vplan.Service.truncated st.Vplan.Service.plan_requests
            st.Vplan.Service.generation_resets l.Vplan.Service.count
            l.Vplan.Service.mean_ms l.Vplan.Service.p50_ms
            l.Vplan.Service.p95_ms l.Vplan.Service.max_ms
      | "" ->
          Format.printf "generation=%d views=%d classes=%d@." st.Vplan.Service.generation
            st.Vplan.Service.num_views st.Vplan.Service.num_view_classes;
          Format.printf "requests=%d hits=%d misses=%d bypasses=%d@."
            st.Vplan.Service.requests st.Vplan.Service.hits st.Vplan.Service.misses
            st.Vplan.Service.bypasses;
          Format.printf "cache size=%d capacity=%d evictions=%d@."
            st.Vplan.Service.cache_size st.Vplan.Service.cache_capacity
            st.Vplan.Service.evictions;
          Format.printf "truncated=%d plan-requests=%d generation-resets=%d@."
            st.Vplan.Service.truncated st.Vplan.Service.plan_requests
            st.Vplan.Service.generation_resets;
          Format.printf "latency count=%d mean=%.3fms p50=%.3fms p95=%.3fms max=%.3fms@."
            l.Vplan.Service.count l.Vplan.Service.mean_ms l.Vplan.Service.p50_ms
            l.Vplan.Service.p95_ms l.Vplan.Service.max_ms
      | _ -> err "usage: stats [--json]")

let cmd_metrics () =
  with_service (fun s ->
      let st = Vplan.Service.stats s in
      (* gauges reflect current state; set them at scrape time *)
      Vplan.Metrics.set (Vplan.Metrics.gauge "vplan_cache_size")
        st.Vplan.Service.cache_size;
      Vplan.Metrics.set (Vplan.Metrics.gauge "vplan_catalog_generation")
        st.Vplan.Service.generation;
      Vplan.Metrics.set (Vplan.Metrics.gauge "vplan_catalog_views")
        st.Vplan.Service.num_views;
      (match Vplan.Service.subplan_counters s with
      | None -> ()
      | Some c ->
          Vplan.Metrics.set
            (Vplan.Metrics.gauge "vplan_subplan_memo_size")
            c.Vplan.Subplan.size;
          Vplan.Metrics.set
            (Vplan.Metrics.gauge "vplan_subplan_memo_hits")
            c.Vplan.Subplan.hits;
          Vplan.Metrics.set
            (Vplan.Metrics.gauge "vplan_subplan_memo_misses")
            c.Vplan.Subplan.misses;
          Vplan.Metrics.set
            (Vplan.Metrics.gauge "vplan_subplan_memo_resets")
            c.Vplan.Subplan.resets);
      Vplan.Metrics.dump Format.std_formatter;
      Format.print_flush ())

let cmd_explain rest =
  with_service (fun s ->
      match Vplan.Parser.parse_rule rest with
      | Error e -> err "%s" (Vplan.Vplan_error.parse_to_string e)
      | Ok query ->
          let clock = Vplan.Budget.create () in
          (* plan exercises the full pipeline (all CoreCover phases plus
             plan selection); without a base database, trace the rewrite
             path instead *)
          let label, spans =
            match Vplan.Service.base s with
            | Some _ ->
                let outcome, spans =
                  Vplan.Trace.run (fun () ->
                      Vplan.Service.plan ?budget:(fresh_budget ())
                        ?max_covers:settings.max_covers
                        ~domains:settings.domains s query)
                in
                ((match outcome with Some _ -> "plan" | None -> "plan none"), spans)
            | None ->
                let outcome, spans =
                  Vplan.Trace.run (fun () ->
                      Vplan.Service.rewrite ?budget:(fresh_budget ())
                        ?max_covers:settings.max_covers
                        ~domains:settings.domains s query)
                in
                ( Printf.sprintf "rewrite %d"
                    (List.length outcome.Vplan.Service.rewritings),
                  spans )
          in
          let ms = Vplan.Budget.elapsed_ms clock in
          Format.printf "ok explain %s request=%.3fms traced=%.3fms spans=%d@."
            label ms
            (Vplan.Trace.top_level_total spans)
            (List.length spans);
          Format.printf "%a" Vplan.Trace.pp_tree spans)

let cmd_set rest =
  match String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") with
  | [ "off" ] ->
      settings.timeout_ms <- None;
      settings.max_steps <- None;
      settings.max_covers <- None;
      settings.slow_ms <- None;
      print_endline "ok budget off"
  | [ "slow-ms"; ms ] -> (
      match float_of_string_opt ms with
      | Some v when v >= 0. ->
          settings.slow_ms <- Some v;
          Format.printf "ok slow-ms=%gms@." v
      | _ -> err "usage: set slow-ms MS")
  | [ "timeout"; ms ] -> (
      match float_of_string_opt ms with
      | Some v when v > 0. ->
          settings.timeout_ms <- Some v;
          Format.printf "ok timeout=%gms@." v
      | _ -> err "usage: set timeout MS")
  | [ "max-steps"; n ] -> (
      match int_of_string_opt n with
      | Some v when v > 0 ->
          settings.max_steps <- Some v;
          Format.printf "ok max-steps=%d@." v
      | _ -> err "usage: set max-steps N")
  | [ "max-covers"; n ] -> (
      match int_of_string_opt n with
      | Some v when v > 0 ->
          settings.max_covers <- Some v;
          Format.printf "ok max-covers=%d@." v
      | _ -> err "usage: set max-covers N")
  | _ ->
      err
        "usage: set timeout MS | set max-steps N | set max-covers N | set \
         slow-ms MS | set off"

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let handle line =
  let line = String.trim line in
  if line = "" then true
  else
    let cmd, rest = split_command line in
    match cmd with
    | "quit" | "exit" -> false
    | "help" -> help (); true
    | "catalog" -> cmd_catalog rest; true
    | "rewrite" -> cmd_rewrite rest; true
    | "batch" -> cmd_batch rest; true
    | "data" -> cmd_data rest; true
    | "plan" -> cmd_plan rest; true
    | "explain" -> cmd_explain rest; true
    | "stats" -> cmd_stats rest; true
    | "metrics" -> cmd_metrics (); true
    | "set" -> cmd_set rest; true
    | other -> err "unknown command %S (try: help)" other; true

(* Fault containment, exactly as in the REPL: a request that raises
   prints one "err" line and the loop continues. *)
let handle_safe line =
  try handle line with
  | Vplan.Vplan_error.Error e ->
      err "%s" (Vplan.Vplan_error.to_string e);
      true
  | Invalid_argument msg | Failure msg | Sys_error msg ->
      err "%s" msg;
      true

let usage () =
  prerr_endline
    "usage: vplan_server [--catalog FILE] [--cache N] [--domains N]\n\
    \                    [--timeout MS] [--max-steps N] [--max-covers N]\n\
    \                    [--slow-ms MS]";
  exit 2

let () =
  let rec parse_args = function
    | [] -> ()
    | "--catalog" :: path :: rest ->
        cmd_catalog_load path;
        (match settings.service with None -> exit 1 | Some _ -> ());
        parse_args rest
    | "--cache" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v > 0 ->
            settings.cache_capacity <- v;
            parse_args rest
        | _ -> usage ())
    | "--domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v > 0 ->
            settings.domains <- v;
            parse_args rest
        | _ -> usage ())
    | "--timeout" :: ms :: rest -> (
        match float_of_string_opt ms with
        | Some v when v > 0. ->
            settings.timeout_ms <- Some v;
            parse_args rest
        | _ -> usage ())
    | "--max-steps" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v > 0 ->
            settings.max_steps <- Some v;
            parse_args rest
        | _ -> usage ())
    | "--max-covers" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v > 0 ->
            settings.max_covers <- Some v;
            parse_args rest
        | _ -> usage ())
    | "--slow-ms" :: ms :: rest -> (
        match float_of_string_opt ms with
        | Some v when v >= 0. ->
            settings.slow_ms <- Some v;
            parse_args rest
        | _ -> usage ())
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let interactive = Unix.isatty Unix.stdin in
  if interactive then print_endline "vplan server \u{2014} type 'help' for commands";
  let rec loop () =
    if interactive then (print_string "vplan> "; flush stdout);
    match input_line stdin with
    | line -> if handle_safe line then loop ()
    | exception End_of_file -> ()
  in
  loop ()
